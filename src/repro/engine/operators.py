"""Physical operators.

Every operator supports three execution disciplines:

- **Row-at-a-time** (:meth:`Operator.execute`): an iterator of
  ``(row, lineage)`` pairs. ``row`` is a tuple of SQL values; ``lineage``
  is either ``None`` (lineage tracking off) or a frozenset of
  ``(table_name, tid)`` pairs identifying the base tuples that contributed
  to the row — the *set of contributing tuples* provenance the paper
  adopts from Cui/Widom lineage ([43] in the paper). This path is the
  semantic reference and the only one that tracks provenance.

- **Batch-at-a-time** (:meth:`Operator.execute_batch`): an iterator of
  row chunks (plain lists, at most :data:`~repro.engine.vector.BATCH_SIZE`
  rows each, never empty), used when lineage is off. Operators process a
  chunk per call — compiled kernels replace per-row closure dispatch and
  the per-row generator hops — and must emit rows in exactly the order the
  row path would (the sqlite-differential and equivalence suites hold the
  two paths bit-identical).

- **Column-at-a-time** (:meth:`Operator.execute_columnar`): an iterator
  of :class:`~repro.engine.columnar.ColumnBatch` chunks (never empty),
  used by ``engine="columnar"``. Scans hand out the table's own column
  lists (zero copy), filters run selection kernels with zone-map chunk
  pruning, joins probe with ``map(buckets.get, key_column)`` and gather
  per column, and group-by reduces gathered value lists. Operators
  without a columnar specialization fall back to an adapter over the
  batch path, so every plan runs under every discipline; rows must again
  come out in exactly the row-path order (the four-way equivalence suite
  holds all disciplines bit-identical).

Lineage combination rules:

- scan: each base row carries its own ``{(table, tid)}``;
- join/product: union of the two sides;
- group-by: union over every row in the group;
- distinct / set-union: union over all duplicates merged into one output.

Hash joins additionally cache their build side when it is a base-table
scan, keyed on the table's monotone mutation version (see
:class:`~repro.engine.table.Table`): policy checks re-join the same static
dimension tables thousands of times, and only the usage-log relations
churn. The cache lives on the operator, which the engine's plan cache
keeps alive across evaluations; hit/miss tallies accumulate on the
:class:`~repro.engine.database.Database` for ``/metrics`` export.
"""

from __future__ import annotations

import itertools
import time
from collections import Counter
from typing import Callable, Iterator, Optional, Sequence

from .aggregates import AccumulatorFactory
from .columnar import (
    OMITTED,
    RANGE_INDEX_MIN_ROWS,
    AggSpec,
    ColumnBatch,
    SelectionKernel,
    Slot,
    chunk_can_skip,
    slot_is_clean,
    slot_values,
    value_family,
)
from .database import Database
from .expressions import RowFn
from .table import Table
from .types import SqlValue, sort_key
from .vector import BATCH_SIZE, BatchFn, chunked, join_probe_kernel

Lineage = Optional[frozenset]
Stream = Iterator[tuple[tuple, Lineage]]
#: A batch stream: non-empty lists of plain row tuples.
BatchStream = Iterator[list]
#: A columnar stream: non-empty column batches.
ColumnStream = Iterator[ColumnBatch]
PredFn = Callable[[tuple], bool]

#: SQL comparison → Python operator, for the inline prune kernel (exact
#: on clean numeric operands; see FilterOp._prepare_inline).
_PY_COMPARE = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class Operator:
    """Base class for physical operators."""

    def execute(self, database: Database, lineage: bool) -> Stream:
        raise NotImplementedError

    def execute_batch(self, database: Database) -> BatchStream:
        """Generic adapter: drain the row path into chunks.

        Specialized operators override this; the adapter guarantees every
        operator (including future ones) works under the batch discipline.
        """
        batch: list = []
        for row, _ in self.execute(database, False):
            batch.append(row)
            if len(batch) >= BATCH_SIZE:
                yield batch
                batch = []
        if batch:
            yield batch

    def execute_columnar(self, database: Database) -> ColumnStream:
        """Generic adapter: transpose the batch path into column batches.

        Specialized operators override this to keep data columnar end to
        end; the adapter guarantees every operator works under the
        columnar discipline (its whole subtree then runs batch-wise).
        """
        for batch in self.execute_batch(database):
            yield ColumnBatch.from_rows(batch)

    def _columnar_rows(self, database: Database) -> Iterator[tuple]:
        """Row tuples drained from the child-facing columnar stream.

        Row-wise fallbacks inside specialized operators use this instead
        of ``execute_batch`` so the subtree *below* stays columnar.
        """
        for cbatch in self.execute_columnar(database):
            yield from cbatch.to_rows()


class ScanOp(Operator):
    """Full scan of a base table."""

    def __init__(self, table_name: str):
        self.table_name = table_name.lower()

    def execute(self, database: Database, lineage: bool) -> Stream:
        table = database.table(self.table_name)
        if lineage:
            name = table.name
            for tid, row in table.scan():
                yield row, frozenset(((name, tid),))
        else:
            for row in table.rows():
                yield row, None

    def execute_batch(self, database: Database) -> BatchStream:
        yield from chunked(database.table(self.table_name).rows())

    def execute_columnar(self, database: Database) -> ColumnStream:
        # One whole-table batch sharing the table's decoded column lists:
        # zero copies, zero tuple construction.
        table = database.table(self.table_name)
        if len(table):
            yield ColumnBatch(
                table.columns_decoded(), len(table), clean=table.clean_flags()
            )


class IndexScanOp(Operator):
    """Equality lookup through a table's lazy hash index.

    ``value_fn`` is evaluated once per execution (on the empty row) so the
    probe value may be any constant expression.
    """

    def __init__(self, table_name: str, column: int, value_fn: Callable[[tuple], SqlValue]):
        self.table_name = table_name.lower()
        self.column = column
        self.value_fn = value_fn

    def execute(self, database: Database, lineage: bool) -> Stream:
        table = database.table(self.table_name)
        value = self.value_fn(())
        matches = table.index_probe(self.column, value)
        if lineage:
            name = table.name
            for tid, row in matches:
                yield row, frozenset(((name, tid),))
        else:
            for _, row in matches:
                yield row, None

    def execute_batch(self, database: Database) -> BatchStream:
        table = database.table(self.table_name)
        value = self.value_fn(())
        matches = table.index_probe(self.column, value)
        if matches:
            yield from chunked([row for _, row in matches])

    def execute_columnar(self, database: Database) -> ColumnStream:
        table = database.table(self.table_name)
        value = self.value_fn(())
        matches = table.index_probe(self.column, value)
        if matches:
            yield ColumnBatch.from_rows([row for _, row in matches])


class MaterializedScanOp(Operator):
    """Scan over an externally supplied table object (temp/increment data).

    Used by the log store to run compaction queries over the union of the
    disk-resident log and the in-memory increment without copying rows into
    the catalog.
    """

    def __init__(self, table: Table, label: Optional[str] = None):
        self.table = table
        self.label = label or table.name

    def execute(self, database: Database, lineage: bool) -> Stream:
        if lineage:
            label = self.label
            for tid, row in self.table.scan():
                yield row, frozenset(((label, tid),))
        else:
            for row in self.table.rows():
                yield row, None

    def execute_batch(self, database: Database) -> BatchStream:
        yield from chunked(self.table.rows())

    def execute_columnar(self, database: Database) -> ColumnStream:
        table = self.table
        if len(table):
            yield ColumnBatch(
                table.columns_decoded(), len(table), clean=table.clean_flags()
            )


class FilterOp(Operator):
    """Keeps rows satisfying a compiled predicate.

    ``kernel`` is the optional batch form (rows → kept rows, see
    :func:`repro.engine.vector.filter_kernel`); ``pushed`` counts WHERE
    conjuncts the planner pushed beneath a join to get here (0 for
    filters that sit where the SQL put them).

    On the columnar path, ``selection`` is the column-form kernel
    (``(columns, n) → kept positions``). When the filter sits directly on
    a base-table scan, the planner additionally supplies ``prune_table``
    plus ``prune_spec`` — ``(column, op, constant)`` triples for the
    simple comparison conjuncts — and the filter consults the table's
    zone maps to *skip* chunks no row of which can qualify (tallied on
    ``database.zone_chunks_skipped``/``scanned``). A lone range conjunct
    (``range_probe``) may instead be answered by the table's sorted range
    index in O(log n + matches). ``prune_complete`` marks specs that
    cover *every* conjunct of the predicate: when the pruned columns are
    additionally clean numerics, scanned chunks run an inline
    raw-comparison kernel instead of re-applying the full selection
    (exact, because the comparison helpers reduce to Python's operators
    on NULL-free numeric operands).

    ``out_needed`` is set by the plan narrowing pass
    (:func:`repro.engine.planner.narrow_plan`): the output column
    positions some ancestor actually reads, or ``None`` for all. Columns
    outside it are emitted as :data:`~repro.engine.columnar.OMITTED`
    placeholders instead of being gathered.
    """

    def __init__(
        self,
        child: Operator,
        predicate: PredFn,
        kernel: Optional[BatchFn] = None,
        pushed: int = 0,
        selection: Optional[SelectionKernel] = None,
        prune_table: Optional[str] = None,
        prune_spec: Optional[list] = None,
        range_probe: Optional[tuple] = None,
        prune_complete: bool = False,
    ):
        self.child = child
        self.predicate = predicate
        self.kernel = kernel
        self.pushed = pushed
        self.selection = selection
        self.prune_table = prune_table
        self.prune_spec = prune_spec or []
        self.range_probe = range_probe
        self.prune_complete = prune_complete
        self.out_needed: Optional[frozenset] = None
        #: Planner-recorded canonical identity for cross-plan sharing
        #: (see :mod:`repro.engine.dag`); ``None`` = never shared.
        self.origin: Optional[tuple] = None
        #: Compiled inline prune kernel (False = statically ineligible).
        self._inline_kernel = None

    def execute(self, database: Database, lineage: bool) -> Stream:
        predicate = self.predicate
        for row, lin in self.child.execute(database, lineage):
            if predicate(row):
                yield row, lin

    def execute_batch(self, database: Database) -> BatchStream:
        kernel = self.kernel
        if kernel is None:
            predicate = self.predicate
            for batch in self.child.execute_batch(database):
                kept = [row for row in batch if predicate(row)]
                if kept:
                    yield kept
        else:
            for batch in self.child.execute_batch(database):
                kept = kernel(batch)
                if kept:
                    yield kept

    def _select_batch(self, cbatch: ColumnBatch) -> Optional[ColumnBatch]:
        """Apply the filter to one column batch (None when nothing passes)."""
        selection = self.selection
        if selection is None:
            predicate = self.predicate
            kept = [row for row in cbatch.to_rows() if predicate(row)]
            if not kept:
                return None
            return ColumnBatch.from_rows(kept)
        positions = selection(cbatch.columns, cbatch.length)
        if not positions:
            return None
        if len(positions) == cbatch.length:
            return cbatch
        return cbatch.take(positions, self.out_needed)

    def execute_columnar(self, database: Database) -> ColumnStream:
        if self.prune_table is not None and (self.prune_spec or self.range_probe):
            yield from self._pruned_scan(database)
            return
        for cbatch in self.child.execute_columnar(database):
            kept = self._select_batch(cbatch)
            if kept is not None:
                yield kept

    def _pruned_scan(self, database: Database) -> ColumnStream:
        """Scan the base table chunk-wise, skipping chunks via zone maps."""
        table = database.table(self.prune_table)
        if not len(table):
            return
        probe = self.range_probe
        if probe is not None and (
            table.has_fresh_range_index(probe[0])
            or len(table) >= RANGE_INDEX_MIN_ROWS
        ):
            positions = table.range_positions(*probe)
            if positions is not None:
                # The probe conjunct *is* the whole predicate here (the
                # planner only sets range_probe for single-conjunct
                # filters), so the matched rows need no re-filtering.
                database.range_probes += 1
                if positions:
                    whole = ColumnBatch(
                        table.columns_decoded(),
                        len(table),
                        clean=table.clean_flags(),
                    )
                    yield whole.take(positions, self.out_needed)
                return
        spec = [
            (position, op, const, value_family(const))
            for position, op, const in self.prune_spec
        ]
        zones = {position: table.zone_map(position) for position, _, _, _ in spec}
        decoded = table.columns_decoded()
        clean = table.clean_flags()
        inline = self._prepare_inline(table, spec)
        matched: Optional[list] = [] if inline is not None else None
        for chunk_index, (start, end) in enumerate(table.chunk_spans()):
            skip = False
            for position, op, const, const_fam in spec:
                if chunk_can_skip(
                    zones[position][chunk_index], op, const, const_fam
                ):
                    skip = True
                    break
            if skip:
                database.zone_chunks_skipped += 1
                continue
            database.zone_chunks_scanned += 1
            if inline is not None:
                kernel, key_positions, consts = inline
                matched += kernel(
                    start,
                    *(decoded[p][start:end] for p in key_positions),
                    *consts,
                )
                continue
            cbatch = ColumnBatch(
                [col[start:end] for col in decoded],
                end - start,
                clean=list(clean),
            )
            kept = self._select_batch(cbatch)
            if kept is not None:
                yield kept
        if matched:
            # Inline path: one gather over the whole table (or the table
            # itself, zero-copy, when every row qualified).
            whole = ColumnBatch(decoded, len(table), clean=list(clean))
            if len(matched) == len(table):
                yield whole
            else:
                yield whole.take(matched, self.out_needed)

    def _prepare_inline(self, table: Table, spec: list) -> Optional[tuple]:
        """``(kernel, column positions, constants)`` for the inline prune
        kernel, or ``None`` when the fast path does not apply.

        Applies only when the spec covers the *whole* predicate
        (``prune_complete``), every constant is an exact numeric
        (non-bool, non-NaN — ``value_family`` already filtered those to
        ``"num"``), and every referenced column is currently a clean
        numeric vector. On such operands the comparison helpers are
        exactly Python's comparison operators, so the compiled
        raw-operator loop keeps the identical row set.
        """
        if not self.prune_complete or not spec:
            return None
        if self._inline_kernel is False:
            return None
        if any(fam != "num" for _, _, _, fam in spec):
            self._inline_kernel = False
            return None
        if not all(
            table.column_vector(position).is_clean_numeric()
            for position, _, _, _ in spec
        ):
            return None  # table state may change; re-check next execution
        key_positions = sorted({position for position, _, _, _ in spec})
        consts = [const for _, _, const, _ in spec]
        kernel = self._inline_kernel
        if kernel is None:
            if len(key_positions) == 1:
                target = f"_v{key_positions[0]}"
                iterable = f"_c{key_positions[0]}"
            else:
                target = "(" + ", ".join(f"_v{p}" for p in key_positions) + ")"
                iterable = (
                    "zip(" + ", ".join(f"_c{p}" for p in key_positions) + ")"
                )
            condition = " and ".join(
                f"_v{position} {_PY_COMPARE[op]} _x{index}"
                for index, (position, op, _, _) in enumerate(spec)
            )
            params = ", ".join(
                [f"_c{p}" for p in key_positions]
                + [f"_x{index}" for index in range(len(spec))]
            )
            source = (
                f"lambda _base, {params}: [_base + _i for _i, {target} "
                f"in enumerate({iterable}) if {condition}]"
            )
            kernel = eval(compile(source, "<inline-prune-kernel>", "eval"), {})
            self._inline_kernel = kernel
        return kernel, key_positions, consts


class ProjectOp(Operator):
    """Row-wise projection through compiled expressions.

    ``kernel`` is the optional batch form (rows → projected rows, see
    :func:`repro.engine.vector.project_kernel`); ``slots`` the optional
    columnar form — per output column either a zero-copy input-column
    pick or a compiled value kernel.
    """

    def __init__(
        self,
        child: Operator,
        exprs: Sequence[RowFn],
        kernel: Optional[BatchFn] = None,
        slots: Optional[Sequence[Slot]] = None,
    ):
        self.child = child
        self.exprs = list(exprs)
        self.kernel = kernel
        self.slots = list(slots) if slots is not None else None

    def execute(self, database: Database, lineage: bool) -> Stream:
        exprs = self.exprs
        for row, lin in self.child.execute(database, lineage):
            yield tuple(fn(row) for fn in exprs), lin

    def execute_batch(self, database: Database) -> BatchStream:
        kernel = self.kernel
        if kernel is None:
            exprs = self.exprs
            for batch in self.child.execute_batch(database):
                yield [tuple(fn(row) for fn in exprs) for row in batch]
        else:
            for batch in self.child.execute_batch(database):
                yield kernel(batch)

    def execute_columnar(self, database: Database) -> ColumnStream:
        slots = self.slots
        if slots is None:
            # Row-wise fallback (group-context projections and exotic
            # expressions); the child subtree stays columnar.
            exprs = self.exprs
            for cbatch in self.child.execute_columnar(database):
                yield ColumnBatch.from_rows(
                    [tuple(fn(row) for fn in exprs) for row in cbatch.to_rows()]
                )
            return
        for cbatch in self.child.execute_columnar(database):
            columns = cbatch.columns
            length = cbatch.length
            clean = cbatch.clean
            yield ColumnBatch(
                [slot_values(slot, columns, length) for slot in slots],
                length,
                clean=[slot_is_clean(slot, clean) for slot in slots],
            )


class HashJoinOp(Operator):
    """Inner equi-join; builds on the right input, probes with the left.

    Output rows are ``left_row + right_row`` so downstream column offsets
    follow FROM order (the planner always joins left-deep in FROM order).

    ``left_tuple_fn``/``right_tuple_fn`` are optional single-call key
    extractors (``row → key tuple``); without them the per-key closure
    lists are used. ``left_positions`` (probe-key column positions, when
    the keys are plain columns) additionally enables a compiled probe
    kernel on the batch path. When the build side is a base-table
    :class:`ScanOp`, the bucket map is cached on the operator keyed by
    the table's mutation version — static relations build once per plan
    lifetime.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[RowFn],
        right_keys: Sequence[RowFn],
        left_tuple_fn: Optional[RowFn] = None,
        right_tuple_fn: Optional[RowFn] = None,
        left_positions: Optional[Sequence[int]] = None,
        right_positions: Optional[Sequence[int]] = None,
    ):
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.left_tuple_fn = left_tuple_fn
        self.right_tuple_fn = right_tuple_fn
        self.left_positions = list(left_positions) if left_positions else None
        self.right_positions = (
            list(right_positions) if right_positions else None
        )
        self._probe_kernel = (
            join_probe_kernel(left_positions) if left_positions else None
        )
        #: Output columns some ancestor reads (None = all); set by the
        #: plan narrowing pass. Unread columns are emitted as OMITTED
        #: placeholders instead of being gathered.
        self.out_needed: Optional[frozenset] = None
        #: lineage flag → (build table, version built at, buckets).
        self._build_cache: dict[bool, tuple] = {}
        #: (build table, version, (right columns, buckets, unique map)).
        self._columnar_cache: Optional[tuple] = None

    # -- build side ---------------------------------------------------------

    def _build_table(self, database: Database) -> Optional[Table]:
        """The base table backing the build side, if cacheable."""
        right = self.right
        if isinstance(right, TracedOp):
            right = right.inner
        if isinstance(right, ScanOp):
            return database.table(right.table_name)
        return None

    def build_cache_state(self) -> Optional[str]:
        """``"hit"``/``"miss"`` for the next execution; None if uncacheable."""
        right = self.right.inner if isinstance(self.right, TracedOp) else self.right
        if not isinstance(right, ScanOp):
            return None
        for flag in (False, True):
            entry = self._build_cache.get(flag)
            if entry is not None and entry[0].version == entry[1]:
                return "hit"
        entry = self._columnar_cache
        if entry is not None and entry[0].version == entry[1]:
            return "hit"
        return "miss"

    def _key_fn(self, tuple_fn: Optional[RowFn], fns: "list[RowFn]") -> RowFn:
        if tuple_fn is not None:
            return tuple_fn
        return lambda row: tuple(fn(row) for fn in fns)

    def _right_buckets(self, database: Database, lineage: bool) -> dict:
        """Build (or reuse) the bucket map for the right input.

        Non-lineage buckets hold plain right rows; lineage buckets hold
        ``(row, lineage)`` pairs.
        """
        table = self._build_table(database)
        version = None
        if table is not None:
            entry = self._build_cache.get(lineage)
            if (
                entry is not None
                and entry[0] is table
                and entry[1] == table.version
            ):
                database.join_build_hits += 1
                return entry[2]
            database.join_build_misses += 1
            version = table.version

        right_key = self._key_fn(self.right_tuple_fn, self.right_keys)
        buckets: dict = {}
        if lineage:
            for row, lin in self.right.execute(database, True):
                key = right_key(row)
                if None in key:
                    continue  # NULL never equi-joins
                buckets.setdefault(key, []).append((row, lin))
        else:
            for batch in self.right.execute_batch(database):
                for row in batch:
                    key = right_key(row)
                    if None in key:
                        continue
                    buckets.setdefault(key, []).append(row)
        if table is not None:
            self._build_cache[lineage] = (table, version, buckets)
        return buckets

    # -- probe side ---------------------------------------------------------

    def execute(self, database: Database, lineage: bool) -> Stream:
        # Probe-first lazy build: pull one probe tuple before building.
        # Policy subplans routinely have empty probe sides (the guarded
        # event never happened), and the build side can be the expensive
        # half — a filtered scan over a growing log table.
        left_iter = self.left.execute(database, lineage)
        first = next(left_iter, None)
        if first is None:
            return
        left_iter = itertools.chain((first,), left_iter)
        buckets = self._right_buckets(database, lineage)
        if not buckets:
            return
        left_key = self._key_fn(self.left_tuple_fn, self.left_keys)
        if lineage:
            for row, lin in left_iter:
                key = left_key(row)
                if None in key:
                    continue
                matches = buckets.get(key)
                if not matches:
                    continue
                for right_row, right_lin in matches:
                    yield row + right_row, (lin or frozenset()) | (
                        right_lin or frozenset()
                    )
        else:
            for row, _ in left_iter:
                key = left_key(row)
                if None in key:
                    continue
                matches = buckets.get(key)
                if not matches:
                    continue
                for right_row in matches:
                    yield row + right_row, None

    def execute_batch(self, database: Database) -> BatchStream:
        # Probe-first lazy build (see execute()).
        left_batches = self.left.execute_batch(database)
        first = next(left_batches, None)
        if first is None:
            return
        left_batches = itertools.chain((first,), left_batches)
        buckets = self._right_buckets(database, False)
        if not buckets:
            return
        get = buckets.get
        probe = self._probe_kernel
        out: list = []
        if probe is not None:
            for batch in left_batches:
                out += probe(batch, get)
                if len(out) >= BATCH_SIZE:
                    yield out
                    out = []
        else:
            # No NULL-key check needed on the probe side: build sides
            # never admit keys containing NULL, so a NULL key misses.
            left_key = self._key_fn(self.left_tuple_fn, self.left_keys)
            empty: tuple = ()
            for batch in left_batches:
                out += [
                    row + right_row
                    for row in batch
                    for right_row in get(left_key(row), empty)
                ]
                if len(out) >= BATCH_SIZE:
                    yield out
                    out = []
        if out:
            yield out

    # -- columnar path ------------------------------------------------------

    @staticmethod
    def _key_column(columns: list, positions: "list[int]") -> list:
        if len(positions) == 1:
            return columns[positions[0]]
        return list(zip(*(columns[p] for p in positions)))

    def _columnar_build(self, database: Database) -> tuple:
        """``(right columns, buckets, unique map)`` for the build side.

        Buckets map key → right-row *positions* (the gather indexes);
        when every key is unique, ``unique map`` (key → single position)
        enables the ``map(get, key_column)`` probe with no per-row Python
        dispatch at all.
        """
        table = self._build_table(database)
        if table is not None:
            entry = self._columnar_cache
            if (
                entry is not None
                and entry[0] is table
                and entry[1] == table.version
            ):
                database.join_build_hits += 1
                return entry[2]
            database.join_build_misses += 1

        # Concatenate the build input's column batches. The single-batch
        # case (a base-table scan) stays zero-copy; with several batches
        # the first is copied before extending (batch columns may alias
        # table caches and must never be mutated).
        right_columns: list = []
        length = 0
        owned = False
        for cbatch in self.right.execute_columnar(database):
            if length == 0:
                right_columns = cbatch.columns
            else:
                if not owned:
                    right_columns = [list(col) for col in right_columns]
                    owned = True
                for index, col in enumerate(cbatch.columns):
                    right_columns[index].extend(col)
            length += cbatch.length

        positions = self.right_positions
        single = len(positions) == 1
        keys = self._key_column(right_columns, positions) if length else []
        buckets: dict = {}
        unique = True
        if single:
            for position, key in enumerate(keys):
                if key is None:
                    continue
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [position]
                else:
                    bucket.append(position)
                    unique = False
        else:
            for position, key in enumerate(keys):
                if None in key:
                    continue
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [position]
                else:
                    bucket.append(position)
                    unique = False
        unique_map = (
            {key: bucket[0] for key, bucket in buckets.items()}
            if unique and buckets
            else None
        )
        built = (right_columns, buckets, unique_map)
        if table is not None:
            self._columnar_cache = (table, table.version, built)
        return built

    def execute_columnar(self, database: Database) -> ColumnStream:
        if self.left_positions is None or self.right_positions is None:
            yield from Operator.execute_columnar(self, database)
            return
        # Probe-first lazy build (see execute()).
        left_cbatches = self.left.execute_columnar(database)
        first = next(left_cbatches, None)
        if first is None:
            return
        left_cbatches = itertools.chain((first,), left_cbatches)
        right_columns, buckets, unique_map = self._columnar_build(database)
        if not buckets:
            return
        left_positions = self.left_positions
        for cbatch in left_cbatches:
            columns = cbatch.columns
            keys = self._key_column(columns, left_positions)
            if unique_map is not None:
                matches = list(map(unique_map.get, keys))
                if None not in matches:
                    # Every probe key matched a unique build row: the
                    # match list *is* the right gather index and the left
                    # side passes through zero-copy.
                    yield self._emit_batch(
                        cbatch, None, matches, right_columns
                    )
                    continue
                left_index = [
                    i for i, match in enumerate(matches) if match is not None
                ]
                if not left_index:
                    continue
                right_index = [m for m in matches if m is not None]
            else:
                get = buckets.get
                left_index = []
                right_index = []
                for i, key in enumerate(keys):
                    bucket = get(key)
                    if bucket is None:
                        continue
                    if len(bucket) == 1:
                        left_index.append(i)
                        right_index.append(bucket[0])
                    else:
                        left_index.extend([i] * len(bucket))
                        right_index.extend(bucket)
                if not left_index:
                    continue
            yield self._emit_batch(
                cbatch, left_index, right_index, right_columns
            )

    def _emit_batch(
        self,
        cbatch: ColumnBatch,
        left_index: Optional[list],
        right_index: list,
        right_columns: list,
    ) -> ColumnBatch:
        """Assemble one join output batch.

        ``left_index`` is ``None`` when every left row matched exactly
        once (the left columns pass through zero-copy). Columns outside
        ``out_needed`` become OMITTED placeholders — no gather at all.
        """
        needed = self.out_needed
        left_width = len(cbatch.columns)
        out_columns: list = []
        out_clean: list = []
        for position, col in enumerate(cbatch.columns):
            if (needed is not None and position not in needed) or (
                col is OMITTED
            ):
                out_columns.append(OMITTED)
                out_clean.append(False)
            elif left_index is None:
                out_columns.append(col)
                out_clean.append(cbatch.clean[position])
            else:
                out_columns.append([col[i] for i in left_index])
                out_clean.append(cbatch.clean[position])
        for offset, col in enumerate(right_columns):
            if needed is not None and left_width + offset not in needed:
                out_columns.append(OMITTED)
                out_clean.append(False)
            else:
                out_columns.append([col[j] for j in right_index])
                out_clean.append(False)
        return ColumnBatch(
            out_columns,
            len(right_index) if left_index is None else len(left_index),
            clean=out_clean,
        )


class NestedLoopOp(Operator):
    """Cross product with an optional residual predicate over the pair."""

    def __init__(
        self, left: Operator, right: Operator, predicate: Optional[PredFn] = None
    ):
        self.left = left
        self.right = right
        self.predicate = predicate

    def execute(self, database: Database, lineage: bool) -> Stream:
        right_rows = list(self.right.execute(database, lineage))
        predicate = self.predicate
        for row, lin in self.left.execute(database, lineage):
            for right_row, right_lin in right_rows:
                combined = row + right_row
                if predicate is not None and not predicate(combined):
                    continue
                if lineage:
                    yield combined, (lin or frozenset()) | (right_lin or frozenset())
                else:
                    yield combined, None

    def execute_batch(self, database: Database) -> BatchStream:
        right_rows = [
            row
            for batch in self.right.execute_batch(database)
            for row in batch
        ]
        predicate = self.predicate
        out: list = []
        for batch in self.left.execute_batch(database):
            for row in batch:
                for right_row in right_rows:
                    combined = row + right_row
                    if predicate is not None and not predicate(combined):
                        continue
                    out.append(combined)
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class LeftJoinOp(Operator):
    """Left outer join with an arbitrary ON predicate.

    Unmatched left rows are padded with ``right_width`` NULLs; their
    lineage is the left row's alone (no right tuple contributed).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: PredFn,
        right_width: int,
    ):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.right_width = right_width

    def execute(self, database: Database, lineage: bool) -> Stream:
        right_rows = list(self.right.execute(database, lineage))
        padding = (None,) * self.right_width
        predicate = self.predicate
        for row, lin in self.left.execute(database, lineage):
            matched = False
            for right_row, right_lin in right_rows:
                combined = row + right_row
                if predicate(combined):
                    matched = True
                    if lineage:
                        yield combined, (lin or frozenset()) | (
                            right_lin or frozenset()
                        )
                    else:
                        yield combined, None
            if not matched:
                yield row + padding, lin

    def execute_batch(self, database: Database) -> BatchStream:
        right_rows = [
            row
            for batch in self.right.execute_batch(database)
            for row in batch
        ]
        padding = (None,) * self.right_width
        predicate = self.predicate
        out: list = []
        for batch in self.left.execute_batch(database):
            for row in batch:
                matched = False
                for right_row in right_rows:
                    combined = row + right_row
                    if predicate(combined):
                        matched = True
                        out.append(combined)
                if not matched:
                    out.append(row + padding)
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class GroupOp(Operator):
    """Hash aggregation.

    Emits *group rows* of shape ``key_values + aggregate_results``; the
    planner compiles HAVING and the select list against that layout. When
    ``key_fns`` is empty, a single group is emitted even for empty input
    (standard scalar-aggregate semantics). ``key_tuple_fn`` is an optional
    single-call key extractor for the batch path.
    """

    def __init__(
        self,
        child: Operator,
        key_fns: Sequence[RowFn],
        agg_factories: Sequence[AccumulatorFactory],
        key_tuple_fn: Optional[RowFn] = None,
        key_slots: Optional[Sequence[Slot]] = None,
        agg_specs: Optional[Sequence[AggSpec]] = None,
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.agg_factories = list(agg_factories)
        self.key_tuple_fn = key_tuple_fn
        #: Columnar forms: one slot per grouping key, one compiled spec
        #: per aggregate. ``None`` (any key/aggregate unsupported) falls
        #: back to the batch discipline for the whole subtree.
        self.key_slots = list(key_slots) if key_slots is not None else None
        self.agg_specs = list(agg_specs) if agg_specs is not None else None
        #: Planner-recorded canonical identity for cross-plan sharing
        #: (see :mod:`repro.engine.dag`); ``None`` = never shared.
        self.origin: Optional[tuple] = None

    def execute(self, database: Database, lineage: bool) -> Stream:
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for row, lin in self.child.execute(database, lineage):
            key = tuple(fn(row) for fn in self.key_fns)
            state = groups.get(key)
            if state is None:
                accumulators = [factory() for factory in self.agg_factories]
                state = [accumulators, frozenset() if lineage else None]
                groups[key] = state
                order.append(key)
            for accumulator in state[0]:
                accumulator.add(row)
            if lineage:
                state[1] = state[1] | (lin or frozenset())

        if not groups and not self.key_fns:
            accumulators = [factory() for factory in self.agg_factories]
            results = tuple(acc.result() for acc in accumulators)
            yield results, (frozenset() if lineage else None)
            return

        for key in order:
            accumulators, lin = groups[key]
            results = tuple(acc.result() for acc in accumulators)
            yield key + results, lin

    def execute_batch(self, database: Database) -> BatchStream:
        if not self.key_fns:
            # Scalar aggregation: one group, accumulators sweep each
            # chunk back-to-back (accumulators are independent, so the
            # per-accumulator order is unobservable).
            accumulators = [factory() for factory in self.agg_factories]
            for batch in self.child.execute_batch(database):
                for accumulator in accumulators:
                    accumulator.add_batch(batch)
            yield [tuple(acc.result() for acc in accumulators)]
            return

        key_of = self.key_tuple_fn or (
            lambda row: tuple(fn(row) for fn in self.key_fns)
        )
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for batch in self.child.execute_batch(database):
            for row in batch:
                key = key_of(row)
                state = groups.get(key)
                if state is None:
                    state = [factory() for factory in self.agg_factories]
                    groups[key] = state
                    order.append(key)
                for accumulator in state:
                    accumulator.add(row)
        out = [
            key + tuple(acc.result() for acc in groups[key]) for key in order
        ]
        yield from chunked(out)

    def execute_columnar(self, database: Database) -> ColumnStream:
        key_slots = self.key_slots
        agg_specs = self.agg_specs
        if key_slots is None or agg_specs is None:
            yield from Operator.execute_columnar(self, database)
            return

        # Materialize the input columns (group-by is a pipeline breaker
        # anyway); single-batch inputs — whole-table scans — stay
        # zero-copy.
        columns: list = []
        clean: list = []
        length = 0
        owned = False
        for cbatch in self.child.execute_columnar(database):
            if length == 0:
                columns = cbatch.columns
                clean = list(cbatch.clean)
            else:
                if not owned:
                    columns = [list(col) for col in columns]
                    owned = True
                for index, col in enumerate(cbatch.columns):
                    columns[index].extend(col)
                clean = [a and b for a, b in zip(clean, cbatch.clean)]
            length += cbatch.length

        # Argument values per aggregate, evaluated over the whole input.
        arg_values: list = []
        arg_clean: list = []
        for spec in agg_specs:
            if spec.arg_slot is None:
                arg_values.append(None)
                arg_clean.append(True)
            else:
                arg_values.append(slot_values(spec.arg_slot, columns, length))
                # Zero-row inputs carry no clean flags; every reducer
                # treats an empty values list the same either way.
                arg_clean.append(
                    slot_is_clean(spec.arg_slot, clean) if length else True
                )

        if not key_slots:
            # Scalar aggregation: one output row even for empty input.
            results = tuple(
                length if spec.count_star else spec.reduce(values, ok)
                for spec, values, ok in zip(agg_specs, arg_values, arg_clean)
            )
            yield ColumnBatch.from_rows([results])
            return

        if length == 0:
            return
        key_columns = [slot_values(slot, columns, length) for slot in key_slots]
        multi = len(key_columns) > 1
        if not multi and all(spec.count_star for spec in agg_specs):
            # COUNT(*)-only grouping over one key: Counter runs the whole
            # group loop in C. Iteration order is first-appearance order
            # (dict insertion), exactly the row path's emission order,
            # and 1/True key collapsing matches dict-key semantics there.
            counts = Counter(key_columns[0])
            width = len(agg_specs)
            yield ColumnBatch.from_rows(
                [(key,) + (count,) * width for key, count in counts.items()]
            )
            return
        keys = list(zip(*key_columns)) if multi else key_columns[0]
        groups: dict = {}
        order: list = []
        for position, key in enumerate(keys):
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [position]
                order.append(key)
            else:
                bucket.append(position)

        out = []
        for key in order:
            bucket = groups[key]
            results = []
            for spec, values, ok in zip(agg_specs, arg_values, arg_clean):
                if spec.count_star:
                    results.append(len(bucket))
                else:
                    results.append(
                        spec.reduce([values[p] for p in bucket], ok)
                    )
            prefix = key if multi else (key,)
            out.append(prefix + tuple(results))
        yield ColumnBatch.from_rows(out)


class DistinctOp(Operator):
    """Set semantics: one output per distinct row, lineages unioned."""

    def __init__(self, child: Operator):
        self.child = child

    def execute(self, database: Database, lineage: bool) -> Stream:
        if not lineage:
            seen: set = set()
            for row, _ in self.child.execute(database, lineage):
                if row not in seen:
                    seen.add(row)
                    yield row, None
            return
        merged: dict[tuple, frozenset] = {}
        order: list[tuple] = []
        for row, lin in self.child.execute(database, lineage):
            if row in merged:
                merged[row] = merged[row] | (lin or frozenset())
            else:
                merged[row] = lin or frozenset()
                order.append(row)
        for row in order:
            yield row, merged[row]

    def execute_batch(self, database: Database) -> BatchStream:
        seen: set = set()
        add = seen.add
        out: list = []
        for batch in self.child.execute_batch(database):
            for row in batch:
                if row not in seen:
                    add(row)
                    out.append(row)
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out

    def execute_columnar(self, database: Database) -> ColumnStream:
        seen: set = set()
        add = seen.add
        out: list = []
        for row in self.child._columnar_rows(database):
            if row not in seen:
                add(row)
                out.append(row)
        if out:
            yield ColumnBatch.from_rows(out)


class DistinctOnOp(Operator):
    """PostgreSQL-style ``DISTINCT ON``: first row per key expression tuple.

    The key is computed on the *input* row; the output row comes from the
    projection functions. The choice of representative is whatever arrives
    first, matching the paper's note that the witness "nondeterministically
    chooses any tuple" from each group.
    """

    def __init__(
        self, child: Operator, key_fns: Sequence[RowFn], out_fns: Sequence[RowFn]
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.out_fns = list(out_fns)

    def execute(self, database: Database, lineage: bool) -> Stream:
        seen: set = set()
        for row, lin in self.child.execute(database, lineage):
            key = tuple(fn(row) for fn in self.key_fns)
            if key in seen:
                continue
            seen.add(key)
            yield tuple(fn(row) for fn in self.out_fns), lin

    def execute_batch(self, database: Database) -> BatchStream:
        seen: set = set()
        key_fns = self.key_fns
        out_fns = self.out_fns
        out: list = []
        for batch in self.child.execute_batch(database):
            for row in batch:
                key = tuple(fn(row) for fn in key_fns)
                if key in seen:
                    continue
                seen.add(key)
                out.append(tuple(fn(row) for fn in out_fns))
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class UnionOp(Operator):
    """UNION / UNION ALL over two inputs of identical arity."""

    def __init__(self, left: Operator, right: Operator, all_rows: bool):
        self.left = left
        self.right = right
        self.all_rows = all_rows

    def execute(self, database: Database, lineage: bool) -> Stream:
        def chained() -> Stream:
            yield from self.left.execute(database, lineage)
            yield from self.right.execute(database, lineage)

        if self.all_rows:
            yield from chained()
        else:
            yield from DistinctOp(_Wrapped(chained())).execute(database, lineage)

    def execute_batch(self, database: Database) -> BatchStream:
        if self.all_rows:
            yield from self.left.execute_batch(database)
            yield from self.right.execute_batch(database)
            return
        seen: set = set()
        out: list = []
        for source in (self.left, self.right):
            for batch in source.execute_batch(database):
                for row in batch:
                    if row not in seen:
                        seen.add(row)
                        out.append(row)
                if len(out) >= BATCH_SIZE:
                    yield out
                    out = []
        if out:
            yield out

    def execute_columnar(self, database: Database) -> ColumnStream:
        if self.all_rows:
            yield from self.left.execute_columnar(database)
            yield from self.right.execute_columnar(database)
            return
        seen: set = set()
        out: list = []
        for source in (self.left, self.right):
            for row in source._columnar_rows(database):
                if row not in seen:
                    seen.add(row)
                    out.append(row)
        if out:
            yield ColumnBatch.from_rows(out)


class ExceptOp(Operator):
    """Set difference (always distinct, like SQL EXCEPT)."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def execute(self, database: Database, lineage: bool) -> Stream:
        removed = {row for row, _ in self.right.execute(database, False)}
        emitted: set = set()
        for row, lin in self.left.execute(database, lineage):
            if row in removed or row in emitted:
                continue
            emitted.add(row)
            yield row, lin

    def execute_batch(self, database: Database) -> BatchStream:
        removed: set = set()
        for batch in self.right.execute_batch(database):
            removed.update(batch)
        emitted: set = set()
        out: list = []
        for batch in self.left.execute_batch(database):
            for row in batch:
                if row in removed or row in emitted:
                    continue
                emitted.add(row)
                out.append(row)
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class IntersectOp(Operator):
    """Set intersection (always distinct, like SQL INTERSECT)."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def execute(self, database: Database, lineage: bool) -> Stream:
        keep = {row for row, _ in self.right.execute(database, False)}
        emitted: set = set()
        for row, lin in self.left.execute(database, lineage):
            if row not in keep or row in emitted:
                continue
            emitted.add(row)
            yield row, lin

    def execute_batch(self, database: Database) -> BatchStream:
        keep: set = set()
        for batch in self.right.execute_batch(database):
            keep.update(batch)
        emitted: set = set()
        out: list = []
        for batch in self.left.execute_batch(database):
            for row in batch:
                if row not in keep or row in emitted:
                    continue
                emitted.add(row)
                out.append(row)
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class OrderOp(Operator):
    """Stable sort by key functions with per-key direction."""

    def __init__(
        self, child: Operator, key_fns: Sequence[RowFn], descending: Sequence[bool]
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.descending = list(descending)

    def execute(self, database: Database, lineage: bool) -> Stream:
        rows = list(self.child.execute(database, lineage))
        # Stable multi-key sort: apply keys right-to-left.
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            rows.sort(key=lambda pair: sort_key(fn(pair[0])), reverse=desc)
        yield from rows

    def execute_batch(self, database: Database) -> BatchStream:
        rows = [
            row
            for batch in self.child.execute_batch(database)
            for row in batch
        ]
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            rows.sort(key=lambda row: sort_key(fn(row)), reverse=desc)
        yield from chunked(rows)

    def execute_columnar(self, database: Database) -> ColumnStream:
        rows = list(self.child._columnar_rows(database))
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            rows.sort(key=lambda row: sort_key(fn(row)), reverse=desc)
        if rows:
            yield ColumnBatch.from_rows(rows)


class LimitOp(Operator):
    """Emit at most ``limit`` rows."""

    def __init__(self, child: Operator, limit: int):
        self.child = child
        self.limit = limit

    def execute(self, database: Database, lineage: bool) -> Stream:
        remaining = self.limit
        if remaining <= 0:
            return
        for row, lin in self.child.execute(database, lineage):
            yield row, lin
            remaining -= 1
            if remaining == 0:
                return

    def execute_batch(self, database: Database) -> BatchStream:
        remaining = self.limit
        if remaining <= 0:
            return
        for batch in self.child.execute_batch(database):
            if len(batch) < remaining:
                remaining -= len(batch)
                yield batch
            else:
                yield batch[:remaining]
                return

    def execute_columnar(self, database: Database) -> ColumnStream:
        remaining = self.limit
        if remaining <= 0:
            return
        for cbatch in self.child.execute_columnar(database):
            if cbatch.length < remaining:
                remaining -= cbatch.length
                yield cbatch
            else:
                yield ColumnBatch(
                    [col[:remaining] for col in cbatch.columns],
                    remaining,
                    clean=list(cbatch.clean),
                )
                return


class ValuesOp(Operator):
    """A constant relation (used for the one-row Clock and for tests)."""

    def __init__(self, rows: Sequence[tuple]):
        self.rows = [tuple(row) for row in rows]

    def execute(self, database: Database, lineage: bool) -> Stream:
        for row in self.rows:
            yield row, (frozenset() if lineage else None)

    def execute_batch(self, database: Database) -> BatchStream:
        yield from chunked(self.rows)

    def execute_columnar(self, database: Database) -> ColumnStream:
        if self.rows:
            yield ColumnBatch.from_rows(self.rows)


class _Wrapped(Operator):
    """Adapts an existing stream to the Operator interface."""

    def __init__(self, stream: Stream):
        self._stream = stream

    def execute(self, database: Database, lineage: bool) -> Stream:
        return self._stream


class TracedOp(Operator):
    """Accounts one operator's rows and inclusive time into a trace span.

    Wraps an inner operator (whose own children are already wrapped, see
    :func:`repro.engine.executor.instrument_plan`) and times each pull
    from its stream, so ``span.seconds`` is the node's *inclusive* wall
    time — time inside its subtree, like ``actual time`` in PostgreSQL's
    ``EXPLAIN ANALYZE`` — and ``span.counters["rows"]`` is rows emitted.
    Under batch execution each pull is one chunk; rows still count rows.
    """

    def __init__(self, inner: Operator, span) -> None:
        self.inner = inner
        self.span = span

    def execute(self, database: Database, lineage: bool) -> Stream:
        span = self.span
        counter = time.perf_counter
        stream = self.inner.execute(database, lineage)
        rows = 0
        try:
            while True:
                started = counter()
                try:
                    item = next(stream)
                except StopIteration:
                    span.seconds += counter() - started
                    return
                span.seconds += counter() - started
                rows += 1
                yield item
        finally:
            # Abandoned early (LIMIT upstream, is_empty probes): the rows
            # pulled so far still count.
            span.counters["rows"] = span.counters.get("rows", 0) + rows

    def execute_batch(self, database: Database) -> BatchStream:
        span = self.span
        counter = time.perf_counter
        stream = self.inner.execute_batch(database)
        rows = 0
        try:
            while True:
                started = counter()
                try:
                    batch = next(stream)
                except StopIteration:
                    span.seconds += counter() - started
                    return
                span.seconds += counter() - started
                rows += len(batch)
                yield batch
        finally:
            span.counters["rows"] = span.counters.get("rows", 0) + rows

    def execute_columnar(self, database: Database) -> ColumnStream:
        span = self.span
        counter = time.perf_counter
        stream = self.inner.execute_columnar(database)
        rows = 0
        try:
            while True:
                started = counter()
                try:
                    cbatch = next(stream)
                except StopIteration:
                    span.seconds += counter() - started
                    return
                span.seconds += counter() - started
                rows += cbatch.length
                yield cbatch
        finally:
            span.counters["rows"] = span.counters.get("rows", 0) + rows
