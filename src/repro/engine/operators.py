"""Physical operators.

Every operator supports two execution disciplines:

- **Row-at-a-time** (:meth:`Operator.execute`): an iterator of
  ``(row, lineage)`` pairs. ``row`` is a tuple of SQL values; ``lineage``
  is either ``None`` (lineage tracking off) or a frozenset of
  ``(table_name, tid)`` pairs identifying the base tuples that contributed
  to the row — the *set of contributing tuples* provenance the paper
  adopts from Cui/Widom lineage ([43] in the paper). This path is the
  semantic reference and the only one that tracks provenance.

- **Batch-at-a-time** (:meth:`Operator.execute_batch`): an iterator of
  row chunks (plain lists, at most :data:`~repro.engine.vector.BATCH_SIZE`
  rows each, never empty), used when lineage is off. Operators process a
  chunk per call — compiled kernels replace per-row closure dispatch and
  the per-row generator hops — and must emit rows in exactly the order the
  row path would (the sqlite-differential and equivalence suites hold the
  two paths bit-identical).

Lineage combination rules:

- scan: each base row carries its own ``{(table, tid)}``;
- join/product: union of the two sides;
- group-by: union over every row in the group;
- distinct / set-union: union over all duplicates merged into one output.

Hash joins additionally cache their build side when it is a base-table
scan, keyed on the table's monotone mutation version (see
:class:`~repro.engine.table.Table`): policy checks re-join the same static
dimension tables thousands of times, and only the usage-log relations
churn. The cache lives on the operator, which the engine's plan cache
keeps alive across evaluations; hit/miss tallies accumulate on the
:class:`~repro.engine.database.Database` for ``/metrics`` export.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional, Sequence

from .aggregates import AccumulatorFactory
from .database import Database
from .expressions import RowFn
from .table import Table
from .types import SqlValue, sort_key
from .vector import BATCH_SIZE, BatchFn, chunked, join_probe_kernel

Lineage = Optional[frozenset]
Stream = Iterator[tuple[tuple, Lineage]]
#: A batch stream: non-empty lists of plain row tuples.
BatchStream = Iterator[list]
PredFn = Callable[[tuple], bool]


class Operator:
    """Base class for physical operators."""

    def execute(self, database: Database, lineage: bool) -> Stream:
        raise NotImplementedError

    def execute_batch(self, database: Database) -> BatchStream:
        """Generic adapter: drain the row path into chunks.

        Specialized operators override this; the adapter guarantees every
        operator (including future ones) works under the batch discipline.
        """
        batch: list = []
        for row, _ in self.execute(database, False):
            batch.append(row)
            if len(batch) >= BATCH_SIZE:
                yield batch
                batch = []
        if batch:
            yield batch


class ScanOp(Operator):
    """Full scan of a base table."""

    def __init__(self, table_name: str):
        self.table_name = table_name.lower()

    def execute(self, database: Database, lineage: bool) -> Stream:
        table = database.table(self.table_name)
        if lineage:
            name = table.name
            for tid, row in table.scan():
                yield row, frozenset(((name, tid),))
        else:
            for row in table.rows():
                yield row, None

    def execute_batch(self, database: Database) -> BatchStream:
        yield from chunked(database.table(self.table_name).rows())


class IndexScanOp(Operator):
    """Equality lookup through a table's lazy hash index.

    ``value_fn`` is evaluated once per execution (on the empty row) so the
    probe value may be any constant expression.
    """

    def __init__(self, table_name: str, column: int, value_fn: Callable[[tuple], SqlValue]):
        self.table_name = table_name.lower()
        self.column = column
        self.value_fn = value_fn

    def execute(self, database: Database, lineage: bool) -> Stream:
        table = database.table(self.table_name)
        value = self.value_fn(())
        matches = table.index_probe(self.column, value)
        if lineage:
            name = table.name
            for tid, row in matches:
                yield row, frozenset(((name, tid),))
        else:
            for _, row in matches:
                yield row, None

    def execute_batch(self, database: Database) -> BatchStream:
        table = database.table(self.table_name)
        value = self.value_fn(())
        matches = table.index_probe(self.column, value)
        if matches:
            yield from chunked([row for _, row in matches])


class MaterializedScanOp(Operator):
    """Scan over an externally supplied table object (temp/increment data).

    Used by the log store to run compaction queries over the union of the
    disk-resident log and the in-memory increment without copying rows into
    the catalog.
    """

    def __init__(self, table: Table, label: Optional[str] = None):
        self.table = table
        self.label = label or table.name

    def execute(self, database: Database, lineage: bool) -> Stream:
        if lineage:
            label = self.label
            for tid, row in self.table.scan():
                yield row, frozenset(((label, tid),))
        else:
            for row in self.table.rows():
                yield row, None

    def execute_batch(self, database: Database) -> BatchStream:
        yield from chunked(self.table.rows())


class FilterOp(Operator):
    """Keeps rows satisfying a compiled predicate.

    ``kernel`` is the optional batch form (rows → kept rows, see
    :func:`repro.engine.vector.filter_kernel`); ``pushed`` counts WHERE
    conjuncts the planner pushed beneath a join to get here (0 for
    filters that sit where the SQL put them).
    """

    def __init__(
        self,
        child: Operator,
        predicate: PredFn,
        kernel: Optional[BatchFn] = None,
        pushed: int = 0,
    ):
        self.child = child
        self.predicate = predicate
        self.kernel = kernel
        self.pushed = pushed

    def execute(self, database: Database, lineage: bool) -> Stream:
        predicate = self.predicate
        for row, lin in self.child.execute(database, lineage):
            if predicate(row):
                yield row, lin

    def execute_batch(self, database: Database) -> BatchStream:
        kernel = self.kernel
        if kernel is None:
            predicate = self.predicate
            for batch in self.child.execute_batch(database):
                kept = [row for row in batch if predicate(row)]
                if kept:
                    yield kept
        else:
            for batch in self.child.execute_batch(database):
                kept = kernel(batch)
                if kept:
                    yield kept


class ProjectOp(Operator):
    """Row-wise projection through compiled expressions.

    ``kernel`` is the optional batch form (rows → projected rows, see
    :func:`repro.engine.vector.project_kernel`).
    """

    def __init__(
        self,
        child: Operator,
        exprs: Sequence[RowFn],
        kernel: Optional[BatchFn] = None,
    ):
        self.child = child
        self.exprs = list(exprs)
        self.kernel = kernel

    def execute(self, database: Database, lineage: bool) -> Stream:
        exprs = self.exprs
        for row, lin in self.child.execute(database, lineage):
            yield tuple(fn(row) for fn in exprs), lin

    def execute_batch(self, database: Database) -> BatchStream:
        kernel = self.kernel
        if kernel is None:
            exprs = self.exprs
            for batch in self.child.execute_batch(database):
                yield [tuple(fn(row) for fn in exprs) for row in batch]
        else:
            for batch in self.child.execute_batch(database):
                yield kernel(batch)


class HashJoinOp(Operator):
    """Inner equi-join; builds on the right input, probes with the left.

    Output rows are ``left_row + right_row`` so downstream column offsets
    follow FROM order (the planner always joins left-deep in FROM order).

    ``left_tuple_fn``/``right_tuple_fn`` are optional single-call key
    extractors (``row → key tuple``); without them the per-key closure
    lists are used. ``left_positions`` (probe-key column positions, when
    the keys are plain columns) additionally enables a compiled probe
    kernel on the batch path. When the build side is a base-table
    :class:`ScanOp`, the bucket map is cached on the operator keyed by
    the table's mutation version — static relations build once per plan
    lifetime.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[RowFn],
        right_keys: Sequence[RowFn],
        left_tuple_fn: Optional[RowFn] = None,
        right_tuple_fn: Optional[RowFn] = None,
        left_positions: Optional[Sequence[int]] = None,
    ):
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.left_tuple_fn = left_tuple_fn
        self.right_tuple_fn = right_tuple_fn
        self._probe_kernel = (
            join_probe_kernel(left_positions) if left_positions else None
        )
        #: lineage flag → (build table, version built at, buckets).
        self._build_cache: dict[bool, tuple] = {}

    # -- build side ---------------------------------------------------------

    def _build_table(self, database: Database) -> Optional[Table]:
        """The base table backing the build side, if cacheable."""
        right = self.right
        if isinstance(right, TracedOp):
            right = right.inner
        if isinstance(right, ScanOp):
            return database.table(right.table_name)
        return None

    def build_cache_state(self) -> Optional[str]:
        """``"hit"``/``"miss"`` for the next execution; None if uncacheable."""
        right = self.right.inner if isinstance(self.right, TracedOp) else self.right
        if not isinstance(right, ScanOp):
            return None
        for flag in (False, True):
            entry = self._build_cache.get(flag)
            if entry is not None and entry[0].version == entry[1]:
                return "hit"
        return "miss"

    def _key_fn(self, tuple_fn: Optional[RowFn], fns: "list[RowFn]") -> RowFn:
        if tuple_fn is not None:
            return tuple_fn
        return lambda row: tuple(fn(row) for fn in fns)

    def _right_buckets(self, database: Database, lineage: bool) -> dict:
        """Build (or reuse) the bucket map for the right input.

        Non-lineage buckets hold plain right rows; lineage buckets hold
        ``(row, lineage)`` pairs.
        """
        table = self._build_table(database)
        version = None
        if table is not None:
            entry = self._build_cache.get(lineage)
            if (
                entry is not None
                and entry[0] is table
                and entry[1] == table.version
            ):
                database.join_build_hits += 1
                return entry[2]
            database.join_build_misses += 1
            version = table.version

        right_key = self._key_fn(self.right_tuple_fn, self.right_keys)
        buckets: dict = {}
        if lineage:
            for row, lin in self.right.execute(database, True):
                key = right_key(row)
                if None in key:
                    continue  # NULL never equi-joins
                buckets.setdefault(key, []).append((row, lin))
        else:
            for batch in self.right.execute_batch(database):
                for row in batch:
                    key = right_key(row)
                    if None in key:
                        continue
                    buckets.setdefault(key, []).append(row)
        if table is not None:
            self._build_cache[lineage] = (table, version, buckets)
        return buckets

    # -- probe side ---------------------------------------------------------

    def execute(self, database: Database, lineage: bool) -> Stream:
        buckets = self._right_buckets(database, lineage)
        left_key = self._key_fn(self.left_tuple_fn, self.left_keys)
        if lineage:
            for row, lin in self.left.execute(database, True):
                key = left_key(row)
                if None in key:
                    continue
                matches = buckets.get(key)
                if not matches:
                    continue
                for right_row, right_lin in matches:
                    yield row + right_row, (lin or frozenset()) | (
                        right_lin or frozenset()
                    )
        else:
            for row, _ in self.left.execute(database, False):
                key = left_key(row)
                if None in key:
                    continue
                matches = buckets.get(key)
                if not matches:
                    continue
                for right_row in matches:
                    yield row + right_row, None

    def execute_batch(self, database: Database) -> BatchStream:
        buckets = self._right_buckets(database, False)
        if not buckets:
            return
        get = buckets.get
        probe = self._probe_kernel
        out: list = []
        if probe is not None:
            for batch in self.left.execute_batch(database):
                out += probe(batch, get)
                if len(out) >= BATCH_SIZE:
                    yield out
                    out = []
        else:
            # No NULL-key check needed on the probe side: build sides
            # never admit keys containing NULL, so a NULL key misses.
            left_key = self._key_fn(self.left_tuple_fn, self.left_keys)
            empty: tuple = ()
            for batch in self.left.execute_batch(database):
                out += [
                    row + right_row
                    for row in batch
                    for right_row in get(left_key(row), empty)
                ]
                if len(out) >= BATCH_SIZE:
                    yield out
                    out = []
        if out:
            yield out


class NestedLoopOp(Operator):
    """Cross product with an optional residual predicate over the pair."""

    def __init__(
        self, left: Operator, right: Operator, predicate: Optional[PredFn] = None
    ):
        self.left = left
        self.right = right
        self.predicate = predicate

    def execute(self, database: Database, lineage: bool) -> Stream:
        right_rows = list(self.right.execute(database, lineage))
        predicate = self.predicate
        for row, lin in self.left.execute(database, lineage):
            for right_row, right_lin in right_rows:
                combined = row + right_row
                if predicate is not None and not predicate(combined):
                    continue
                if lineage:
                    yield combined, (lin or frozenset()) | (right_lin or frozenset())
                else:
                    yield combined, None

    def execute_batch(self, database: Database) -> BatchStream:
        right_rows = [
            row
            for batch in self.right.execute_batch(database)
            for row in batch
        ]
        predicate = self.predicate
        out: list = []
        for batch in self.left.execute_batch(database):
            for row in batch:
                for right_row in right_rows:
                    combined = row + right_row
                    if predicate is not None and not predicate(combined):
                        continue
                    out.append(combined)
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class LeftJoinOp(Operator):
    """Left outer join with an arbitrary ON predicate.

    Unmatched left rows are padded with ``right_width`` NULLs; their
    lineage is the left row's alone (no right tuple contributed).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: PredFn,
        right_width: int,
    ):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.right_width = right_width

    def execute(self, database: Database, lineage: bool) -> Stream:
        right_rows = list(self.right.execute(database, lineage))
        padding = (None,) * self.right_width
        predicate = self.predicate
        for row, lin in self.left.execute(database, lineage):
            matched = False
            for right_row, right_lin in right_rows:
                combined = row + right_row
                if predicate(combined):
                    matched = True
                    if lineage:
                        yield combined, (lin or frozenset()) | (
                            right_lin or frozenset()
                        )
                    else:
                        yield combined, None
            if not matched:
                yield row + padding, lin

    def execute_batch(self, database: Database) -> BatchStream:
        right_rows = [
            row
            for batch in self.right.execute_batch(database)
            for row in batch
        ]
        padding = (None,) * self.right_width
        predicate = self.predicate
        out: list = []
        for batch in self.left.execute_batch(database):
            for row in batch:
                matched = False
                for right_row in right_rows:
                    combined = row + right_row
                    if predicate(combined):
                        matched = True
                        out.append(combined)
                if not matched:
                    out.append(row + padding)
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class GroupOp(Operator):
    """Hash aggregation.

    Emits *group rows* of shape ``key_values + aggregate_results``; the
    planner compiles HAVING and the select list against that layout. When
    ``key_fns`` is empty, a single group is emitted even for empty input
    (standard scalar-aggregate semantics). ``key_tuple_fn`` is an optional
    single-call key extractor for the batch path.
    """

    def __init__(
        self,
        child: Operator,
        key_fns: Sequence[RowFn],
        agg_factories: Sequence[AccumulatorFactory],
        key_tuple_fn: Optional[RowFn] = None,
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.agg_factories = list(agg_factories)
        self.key_tuple_fn = key_tuple_fn

    def execute(self, database: Database, lineage: bool) -> Stream:
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for row, lin in self.child.execute(database, lineage):
            key = tuple(fn(row) for fn in self.key_fns)
            state = groups.get(key)
            if state is None:
                accumulators = [factory() for factory in self.agg_factories]
                state = [accumulators, frozenset() if lineage else None]
                groups[key] = state
                order.append(key)
            for accumulator in state[0]:
                accumulator.add(row)
            if lineage:
                state[1] = state[1] | (lin or frozenset())

        if not groups and not self.key_fns:
            accumulators = [factory() for factory in self.agg_factories]
            results = tuple(acc.result() for acc in accumulators)
            yield results, (frozenset() if lineage else None)
            return

        for key in order:
            accumulators, lin = groups[key]
            results = tuple(acc.result() for acc in accumulators)
            yield key + results, lin

    def execute_batch(self, database: Database) -> BatchStream:
        if not self.key_fns:
            # Scalar aggregation: one group, accumulators sweep each
            # chunk back-to-back (accumulators are independent, so the
            # per-accumulator order is unobservable).
            accumulators = [factory() for factory in self.agg_factories]
            for batch in self.child.execute_batch(database):
                for accumulator in accumulators:
                    accumulator.add_batch(batch)
            yield [tuple(acc.result() for acc in accumulators)]
            return

        key_of = self.key_tuple_fn or (
            lambda row: tuple(fn(row) for fn in self.key_fns)
        )
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for batch in self.child.execute_batch(database):
            for row in batch:
                key = key_of(row)
                state = groups.get(key)
                if state is None:
                    state = [factory() for factory in self.agg_factories]
                    groups[key] = state
                    order.append(key)
                for accumulator in state:
                    accumulator.add(row)
        out = [
            key + tuple(acc.result() for acc in groups[key]) for key in order
        ]
        yield from chunked(out)


class DistinctOp(Operator):
    """Set semantics: one output per distinct row, lineages unioned."""

    def __init__(self, child: Operator):
        self.child = child

    def execute(self, database: Database, lineage: bool) -> Stream:
        if not lineage:
            seen: set = set()
            for row, _ in self.child.execute(database, lineage):
                if row not in seen:
                    seen.add(row)
                    yield row, None
            return
        merged: dict[tuple, frozenset] = {}
        order: list[tuple] = []
        for row, lin in self.child.execute(database, lineage):
            if row in merged:
                merged[row] = merged[row] | (lin or frozenset())
            else:
                merged[row] = lin or frozenset()
                order.append(row)
        for row in order:
            yield row, merged[row]

    def execute_batch(self, database: Database) -> BatchStream:
        seen: set = set()
        add = seen.add
        out: list = []
        for batch in self.child.execute_batch(database):
            for row in batch:
                if row not in seen:
                    add(row)
                    out.append(row)
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class DistinctOnOp(Operator):
    """PostgreSQL-style ``DISTINCT ON``: first row per key expression tuple.

    The key is computed on the *input* row; the output row comes from the
    projection functions. The choice of representative is whatever arrives
    first, matching the paper's note that the witness "nondeterministically
    chooses any tuple" from each group.
    """

    def __init__(
        self, child: Operator, key_fns: Sequence[RowFn], out_fns: Sequence[RowFn]
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.out_fns = list(out_fns)

    def execute(self, database: Database, lineage: bool) -> Stream:
        seen: set = set()
        for row, lin in self.child.execute(database, lineage):
            key = tuple(fn(row) for fn in self.key_fns)
            if key in seen:
                continue
            seen.add(key)
            yield tuple(fn(row) for fn in self.out_fns), lin

    def execute_batch(self, database: Database) -> BatchStream:
        seen: set = set()
        key_fns = self.key_fns
        out_fns = self.out_fns
        out: list = []
        for batch in self.child.execute_batch(database):
            for row in batch:
                key = tuple(fn(row) for fn in key_fns)
                if key in seen:
                    continue
                seen.add(key)
                out.append(tuple(fn(row) for fn in out_fns))
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class UnionOp(Operator):
    """UNION / UNION ALL over two inputs of identical arity."""

    def __init__(self, left: Operator, right: Operator, all_rows: bool):
        self.left = left
        self.right = right
        self.all_rows = all_rows

    def execute(self, database: Database, lineage: bool) -> Stream:
        def chained() -> Stream:
            yield from self.left.execute(database, lineage)
            yield from self.right.execute(database, lineage)

        if self.all_rows:
            yield from chained()
        else:
            yield from DistinctOp(_Wrapped(chained())).execute(database, lineage)

    def execute_batch(self, database: Database) -> BatchStream:
        if self.all_rows:
            yield from self.left.execute_batch(database)
            yield from self.right.execute_batch(database)
            return
        seen: set = set()
        out: list = []
        for source in (self.left, self.right):
            for batch in source.execute_batch(database):
                for row in batch:
                    if row not in seen:
                        seen.add(row)
                        out.append(row)
                if len(out) >= BATCH_SIZE:
                    yield out
                    out = []
        if out:
            yield out


class ExceptOp(Operator):
    """Set difference (always distinct, like SQL EXCEPT)."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def execute(self, database: Database, lineage: bool) -> Stream:
        removed = {row for row, _ in self.right.execute(database, False)}
        emitted: set = set()
        for row, lin in self.left.execute(database, lineage):
            if row in removed or row in emitted:
                continue
            emitted.add(row)
            yield row, lin

    def execute_batch(self, database: Database) -> BatchStream:
        removed: set = set()
        for batch in self.right.execute_batch(database):
            removed.update(batch)
        emitted: set = set()
        out: list = []
        for batch in self.left.execute_batch(database):
            for row in batch:
                if row in removed or row in emitted:
                    continue
                emitted.add(row)
                out.append(row)
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class IntersectOp(Operator):
    """Set intersection (always distinct, like SQL INTERSECT)."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def execute(self, database: Database, lineage: bool) -> Stream:
        keep = {row for row, _ in self.right.execute(database, False)}
        emitted: set = set()
        for row, lin in self.left.execute(database, lineage):
            if row not in keep or row in emitted:
                continue
            emitted.add(row)
            yield row, lin

    def execute_batch(self, database: Database) -> BatchStream:
        keep: set = set()
        for batch in self.right.execute_batch(database):
            keep.update(batch)
        emitted: set = set()
        out: list = []
        for batch in self.left.execute_batch(database):
            for row in batch:
                if row not in keep or row in emitted:
                    continue
                emitted.add(row)
                out.append(row)
            if len(out) >= BATCH_SIZE:
                yield out
                out = []
        if out:
            yield out


class OrderOp(Operator):
    """Stable sort by key functions with per-key direction."""

    def __init__(
        self, child: Operator, key_fns: Sequence[RowFn], descending: Sequence[bool]
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.descending = list(descending)

    def execute(self, database: Database, lineage: bool) -> Stream:
        rows = list(self.child.execute(database, lineage))
        # Stable multi-key sort: apply keys right-to-left.
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            rows.sort(key=lambda pair: sort_key(fn(pair[0])), reverse=desc)
        yield from rows

    def execute_batch(self, database: Database) -> BatchStream:
        rows = [
            row
            for batch in self.child.execute_batch(database)
            for row in batch
        ]
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            rows.sort(key=lambda row: sort_key(fn(row)), reverse=desc)
        yield from chunked(rows)


class LimitOp(Operator):
    """Emit at most ``limit`` rows."""

    def __init__(self, child: Operator, limit: int):
        self.child = child
        self.limit = limit

    def execute(self, database: Database, lineage: bool) -> Stream:
        remaining = self.limit
        if remaining <= 0:
            return
        for row, lin in self.child.execute(database, lineage):
            yield row, lin
            remaining -= 1
            if remaining == 0:
                return

    def execute_batch(self, database: Database) -> BatchStream:
        remaining = self.limit
        if remaining <= 0:
            return
        for batch in self.child.execute_batch(database):
            if len(batch) < remaining:
                remaining -= len(batch)
                yield batch
            else:
                yield batch[:remaining]
                return


class ValuesOp(Operator):
    """A constant relation (used for the one-row Clock and for tests)."""

    def __init__(self, rows: Sequence[tuple]):
        self.rows = [tuple(row) for row in rows]

    def execute(self, database: Database, lineage: bool) -> Stream:
        for row in self.rows:
            yield row, (frozenset() if lineage else None)

    def execute_batch(self, database: Database) -> BatchStream:
        yield from chunked(self.rows)


class _Wrapped(Operator):
    """Adapts an existing stream to the Operator interface."""

    def __init__(self, stream: Stream):
        self._stream = stream

    def execute(self, database: Database, lineage: bool) -> Stream:
        return self._stream


class TracedOp(Operator):
    """Accounts one operator's rows and inclusive time into a trace span.

    Wraps an inner operator (whose own children are already wrapped, see
    :func:`repro.engine.executor.instrument_plan`) and times each pull
    from its stream, so ``span.seconds`` is the node's *inclusive* wall
    time — time inside its subtree, like ``actual time`` in PostgreSQL's
    ``EXPLAIN ANALYZE`` — and ``span.counters["rows"]`` is rows emitted.
    Under batch execution each pull is one chunk; rows still count rows.
    """

    def __init__(self, inner: Operator, span) -> None:
        self.inner = inner
        self.span = span

    def execute(self, database: Database, lineage: bool) -> Stream:
        span = self.span
        counter = time.perf_counter
        stream = self.inner.execute(database, lineage)
        rows = 0
        try:
            while True:
                started = counter()
                try:
                    item = next(stream)
                except StopIteration:
                    span.seconds += counter() - started
                    return
                span.seconds += counter() - started
                rows += 1
                yield item
        finally:
            # Abandoned early (LIMIT upstream, is_empty probes): the rows
            # pulled so far still count.
            span.counters["rows"] = span.counters.get("rows", 0) + rows

    def execute_batch(self, database: Database) -> BatchStream:
        span = self.span
        counter = time.perf_counter
        stream = self.inner.execute_batch(database)
        rows = 0
        try:
            while True:
                started = counter()
                try:
                    batch = next(stream)
                except StopIteration:
                    span.seconds += counter() - started
                    return
                span.seconds += counter() - started
                rows += len(batch)
                yield batch
        finally:
            span.counters["rows"] = span.counters.get("rows", 0) + rows
