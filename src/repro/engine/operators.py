"""Physical operators.

Every operator produces an iterator of ``(row, lineage)`` pairs. ``row`` is
a tuple of SQL values; ``lineage`` is either ``None`` (lineage tracking
off) or a frozenset of ``(table_name, tid)`` pairs identifying the base
tuples that contributed to the row — the *set of contributing tuples*
provenance the paper adopts from Cui/Widom lineage ([43] in the paper).

Lineage combination rules:

- scan: each base row carries its own ``{(table, tid)}``;
- join/product: union of the two sides;
- group-by: union over every row in the group;
- distinct / set-union: union over all duplicates merged into one output.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional, Sequence

from .aggregates import AccumulatorFactory
from .database import Database
from .expressions import RowFn
from .table import Table
from .types import SqlValue, sort_key

Lineage = Optional[frozenset]
Stream = Iterator[tuple[tuple, Lineage]]
PredFn = Callable[[tuple], bool]


class Operator:
    """Base class for physical operators."""

    def execute(self, database: Database, lineage: bool) -> Stream:
        raise NotImplementedError


class ScanOp(Operator):
    """Full scan of a base table."""

    def __init__(self, table_name: str):
        self.table_name = table_name.lower()

    def execute(self, database: Database, lineage: bool) -> Stream:
        table = database.table(self.table_name)
        if lineage:
            name = table.name
            for tid, row in table.scan():
                yield row, frozenset(((name, tid),))
        else:
            for row in table.rows():
                yield row, None


class IndexScanOp(Operator):
    """Equality lookup through a table's lazy hash index.

    ``value_fn`` is evaluated once per execution (on the empty row) so the
    probe value may be any constant expression.
    """

    def __init__(self, table_name: str, column: int, value_fn: Callable[[tuple], SqlValue]):
        self.table_name = table_name.lower()
        self.column = column
        self.value_fn = value_fn

    def execute(self, database: Database, lineage: bool) -> Stream:
        table = database.table(self.table_name)
        value = self.value_fn(())
        matches = table.index_probe(self.column, value)
        if lineage:
            name = table.name
            for tid, row in matches:
                yield row, frozenset(((name, tid),))
        else:
            for _, row in matches:
                yield row, None


class MaterializedScanOp(Operator):
    """Scan over an externally supplied table object (temp/increment data).

    Used by the log store to run compaction queries over the union of the
    disk-resident log and the in-memory increment without copying rows into
    the catalog.
    """

    def __init__(self, table: Table, label: Optional[str] = None):
        self.table = table
        self.label = label or table.name

    def execute(self, database: Database, lineage: bool) -> Stream:
        if lineage:
            label = self.label
            for tid, row in self.table.scan():
                yield row, frozenset(((label, tid),))
        else:
            for row in self.table.rows():
                yield row, None


class FilterOp(Operator):
    """Keeps rows satisfying a compiled predicate."""

    def __init__(self, child: Operator, predicate: PredFn):
        self.child = child
        self.predicate = predicate

    def execute(self, database: Database, lineage: bool) -> Stream:
        predicate = self.predicate
        for row, lin in self.child.execute(database, lineage):
            if predicate(row):
                yield row, lin


class ProjectOp(Operator):
    """Row-wise projection through compiled expressions."""

    def __init__(self, child: Operator, exprs: Sequence[RowFn]):
        self.child = child
        self.exprs = list(exprs)

    def execute(self, database: Database, lineage: bool) -> Stream:
        exprs = self.exprs
        for row, lin in self.child.execute(database, lineage):
            yield tuple(fn(row) for fn in exprs), lin


class HashJoinOp(Operator):
    """Inner equi-join; builds on the right input, probes with the left.

    Output rows are ``left_row + right_row`` so downstream column offsets
    follow FROM order (the planner always joins left-deep in FROM order).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[RowFn],
        right_keys: Sequence[RowFn],
    ):
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)

    def execute(self, database: Database, lineage: bool) -> Stream:
        buckets: dict[tuple, list[tuple[tuple, Lineage]]] = {}
        for row, lin in self.right.execute(database, lineage):
            key = tuple(fn(row) for fn in self.right_keys)
            if any(value is None for value in key):
                continue  # NULL never equi-joins
            buckets.setdefault(key, []).append((row, lin))

        for row, lin in self.left.execute(database, lineage):
            key = tuple(fn(row) for fn in self.left_keys)
            if any(value is None for value in key):
                continue
            matches = buckets.get(key)
            if not matches:
                continue
            for right_row, right_lin in matches:
                combined = row + right_row
                if lineage:
                    yield combined, (lin or frozenset()) | (right_lin or frozenset())
                else:
                    yield combined, None


class NestedLoopOp(Operator):
    """Cross product with an optional residual predicate over the pair."""

    def __init__(
        self, left: Operator, right: Operator, predicate: Optional[PredFn] = None
    ):
        self.left = left
        self.right = right
        self.predicate = predicate

    def execute(self, database: Database, lineage: bool) -> Stream:
        right_rows = list(self.right.execute(database, lineage))
        predicate = self.predicate
        for row, lin in self.left.execute(database, lineage):
            for right_row, right_lin in right_rows:
                combined = row + right_row
                if predicate is not None and not predicate(combined):
                    continue
                if lineage:
                    yield combined, (lin or frozenset()) | (right_lin or frozenset())
                else:
                    yield combined, None


class LeftJoinOp(Operator):
    """Left outer join with an arbitrary ON predicate.

    Unmatched left rows are padded with ``right_width`` NULLs; their
    lineage is the left row's alone (no right tuple contributed).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: PredFn,
        right_width: int,
    ):
        self.left = left
        self.right = right
        self.predicate = predicate
        self.right_width = right_width

    def execute(self, database: Database, lineage: bool) -> Stream:
        right_rows = list(self.right.execute(database, lineage))
        padding = (None,) * self.right_width
        predicate = self.predicate
        for row, lin in self.left.execute(database, lineage):
            matched = False
            for right_row, right_lin in right_rows:
                combined = row + right_row
                if predicate(combined):
                    matched = True
                    if lineage:
                        yield combined, (lin or frozenset()) | (
                            right_lin or frozenset()
                        )
                    else:
                        yield combined, None
            if not matched:
                yield row + padding, lin


class GroupOp(Operator):
    """Hash aggregation.

    Emits *group rows* of shape ``key_values + aggregate_results``; the
    planner compiles HAVING and the select list against that layout. When
    ``key_fns`` is empty, a single group is emitted even for empty input
    (standard scalar-aggregate semantics).
    """

    def __init__(
        self,
        child: Operator,
        key_fns: Sequence[RowFn],
        agg_factories: Sequence[AccumulatorFactory],
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.agg_factories = list(agg_factories)

    def execute(self, database: Database, lineage: bool) -> Stream:
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for row, lin in self.child.execute(database, lineage):
            key = tuple(fn(row) for fn in self.key_fns)
            state = groups.get(key)
            if state is None:
                accumulators = [factory() for factory in self.agg_factories]
                state = [accumulators, frozenset() if lineage else None]
                groups[key] = state
                order.append(key)
            for accumulator in state[0]:
                accumulator.add(row)
            if lineage:
                state[1] = state[1] | (lin or frozenset())

        if not groups and not self.key_fns:
            accumulators = [factory() for factory in self.agg_factories]
            results = tuple(acc.result() for acc in accumulators)
            yield results, (frozenset() if lineage else None)
            return

        for key in order:
            accumulators, lin = groups[key]
            results = tuple(acc.result() for acc in accumulators)
            yield key + results, lin


class DistinctOp(Operator):
    """Set semantics: one output per distinct row, lineages unioned."""

    def __init__(self, child: Operator):
        self.child = child

    def execute(self, database: Database, lineage: bool) -> Stream:
        if not lineage:
            seen: set = set()
            for row, _ in self.child.execute(database, lineage):
                if row not in seen:
                    seen.add(row)
                    yield row, None
            return
        merged: dict[tuple, frozenset] = {}
        order: list[tuple] = []
        for row, lin in self.child.execute(database, lineage):
            if row in merged:
                merged[row] = merged[row] | (lin or frozenset())
            else:
                merged[row] = lin or frozenset()
                order.append(row)
        for row in order:
            yield row, merged[row]


class DistinctOnOp(Operator):
    """PostgreSQL-style ``DISTINCT ON``: first row per key expression tuple.

    The key is computed on the *input* row; the output row comes from the
    projection functions. The choice of representative is whatever arrives
    first, matching the paper's note that the witness "nondeterministically
    chooses any tuple" from each group.
    """

    def __init__(
        self, child: Operator, key_fns: Sequence[RowFn], out_fns: Sequence[RowFn]
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.out_fns = list(out_fns)

    def execute(self, database: Database, lineage: bool) -> Stream:
        seen: set = set()
        for row, lin in self.child.execute(database, lineage):
            key = tuple(fn(row) for fn in self.key_fns)
            if key in seen:
                continue
            seen.add(key)
            yield tuple(fn(row) for fn in self.out_fns), lin


class UnionOp(Operator):
    """UNION / UNION ALL over two inputs of identical arity."""

    def __init__(self, left: Operator, right: Operator, all_rows: bool):
        self.left = left
        self.right = right
        self.all_rows = all_rows

    def execute(self, database: Database, lineage: bool) -> Stream:
        def chained() -> Stream:
            yield from self.left.execute(database, lineage)
            yield from self.right.execute(database, lineage)

        if self.all_rows:
            yield from chained()
        else:
            yield from DistinctOp(_Wrapped(chained())).execute(database, lineage)


class ExceptOp(Operator):
    """Set difference (always distinct, like SQL EXCEPT)."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def execute(self, database: Database, lineage: bool) -> Stream:
        removed = {row for row, _ in self.right.execute(database, False)}
        emitted: set = set()
        for row, lin in self.left.execute(database, lineage):
            if row in removed or row in emitted:
                continue
            emitted.add(row)
            yield row, lin


class IntersectOp(Operator):
    """Set intersection (always distinct, like SQL INTERSECT)."""

    def __init__(self, left: Operator, right: Operator):
        self.left = left
        self.right = right

    def execute(self, database: Database, lineage: bool) -> Stream:
        keep = {row for row, _ in self.right.execute(database, False)}
        emitted: set = set()
        for row, lin in self.left.execute(database, lineage):
            if row not in keep or row in emitted:
                continue
            emitted.add(row)
            yield row, lin


class OrderOp(Operator):
    """Stable sort by key functions with per-key direction."""

    def __init__(
        self, child: Operator, key_fns: Sequence[RowFn], descending: Sequence[bool]
    ):
        self.child = child
        self.key_fns = list(key_fns)
        self.descending = list(descending)

    def execute(self, database: Database, lineage: bool) -> Stream:
        rows = list(self.child.execute(database, lineage))
        # Stable multi-key sort: apply keys right-to-left.
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            rows.sort(key=lambda pair: sort_key(fn(pair[0])), reverse=desc)
        yield from rows


class LimitOp(Operator):
    """Emit at most ``limit`` rows."""

    def __init__(self, child: Operator, limit: int):
        self.child = child
        self.limit = limit

    def execute(self, database: Database, lineage: bool) -> Stream:
        remaining = self.limit
        if remaining <= 0:
            return
        for row, lin in self.child.execute(database, lineage):
            yield row, lin
            remaining -= 1
            if remaining == 0:
                return


class ValuesOp(Operator):
    """A constant relation (used for the one-row Clock and for tests)."""

    def __init__(self, rows: Sequence[tuple]):
        self.rows = [tuple(row) for row in rows]

    def execute(self, database: Database, lineage: bool) -> Stream:
        for row in self.rows:
            yield row, (frozenset() if lineage else None)


class _Wrapped(Operator):
    """Adapts an existing stream to the Operator interface."""

    def __init__(self, stream: Stream):
        self._stream = stream

    def execute(self, database: Database, lineage: bool) -> Stream:
        return self._stream


class TracedOp(Operator):
    """Accounts one operator's rows and inclusive time into a trace span.

    Wraps an inner operator (whose own children are already wrapped, see
    :func:`repro.engine.executor.instrument_plan`) and times each pull
    from its stream, so ``span.seconds`` is the node's *inclusive* wall
    time — time inside its subtree, like ``actual time`` in PostgreSQL's
    ``EXPLAIN ANALYZE`` — and ``span.counters["rows"]`` is rows emitted.
    """

    def __init__(self, inner: Operator, span) -> None:
        self.inner = inner
        self.span = span

    def execute(self, database: Database, lineage: bool) -> Stream:
        span = self.span
        counter = time.perf_counter
        stream = self.inner.execute(database, lineage)
        rows = 0
        try:
            while True:
                started = counter()
                try:
                    item = next(stream)
                except StopIteration:
                    span.seconds += counter() - started
                    return
                span.seconds += counter() - started
                rows += 1
                yield item
        finally:
            # Abandoned early (LIMIT upstream, is_empty probes): the rows
            # pulled so far still count.
            span.counters["rows"] = span.counters.get("rows", 0) + rows
