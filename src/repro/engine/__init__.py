"""A small in-memory relational engine.

This is the substrate the paper runs on PostgreSQL; here it is implemented
from scratch: catalog, expression compiler, iterator operators, hash joins,
grouping with the usual aggregates, ``DISTINCT ON``, set operations, and
executor-level lineage tracking (contributing-tuples provenance).

Typical use::

    from repro.engine import Database, Engine

    db = Database()
    db.load_table("t", ["a", "b"], [(1, "x"), (2, "y")])
    engine = Engine(db)
    result = engine.execute("SELECT a FROM t WHERE b = 'x'")
"""

from .database import Database
from .executor import DEFAULT_ENGINE, ENGINES, Engine, Result, resolve_engine
from .schema import Column, TableSchema, make_schema
from .table import Table
from .types import SqlValue

__all__ = [
    "Database",
    "DEFAULT_ENGINE",
    "ENGINES",
    "Engine",
    "Result",
    "resolve_engine",
    "Column",
    "TableSchema",
    "make_schema",
    "Table",
    "SqlValue",
]
