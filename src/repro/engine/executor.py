"""Query execution facade.

:class:`Engine` plans and runs SQL (text or AST) against a
:class:`~repro.engine.database.Database` and returns a :class:`Result`.
Passing ``lineage=True`` makes every result row carry the set of
``(table, tid)`` base tuples that contributed to it — the mechanism behind
the ``Provenance`` usage log and the §4.3 improved-partial-policy check.

Passing ``trace=`` (a :class:`~repro.obs.TraceContext`) attaches one span
per physical operator under the caller's current span, each accounting
rows emitted and inclusive wall time; ``explain(analyze=True)`` is the
self-contained version that executes the plan and renders those spans as
per-node ``rows=… time=…`` annotations.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional, Union

from ..deprecation import warn_deprecated
from ..errors import LexError
from ..obs import TraceContext
from ..sql import ast, canonical_sql, parse
from .database import Database
from .explain import describe, explain_plan, render_analyzed
from .operators import Operator, TracedOp
from .planner import Plan, plan_query
from .table import Row


@dataclass
class Result:
    """The outcome of a query execution."""

    columns: list[str]
    rows: list[Row]
    lineages: Optional[list[frozenset]] = None
    #: Number of base-table rows read while executing (cost accounting).
    statements: int = 1

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def scalar(self):
        """The single value of a 1×1 result (None when empty).

        A result wider or taller than 1×1 raises: callers compare the
        scalar against thresholds, and silently returning the top-left
        cell of a multi-row result would mask a malformed query.
        """
        if not self.rows:
            return None
        if len(self.rows) > 1:
            raise ValueError(
                f"scalar() on a {len(self.rows)}-row result; "
                "expected at most one row"
            )
        if len(self.rows[0]) != 1:
            raise ValueError(
                f"scalar() on a {len(self.rows[0])}-column row; "
                "expected exactly one column"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list:
        """All values of one output column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def lineage_tables(self) -> set[str]:
        """All base tables mentioned in any row's lineage."""
        if self.lineages is None:
            return set()
        tables: set[str] = set()
        for lineage in self.lineages:
            tables.update(table for table, _ in lineage)
        return tables


def instrument_plan(
    op: Operator, trace: TraceContext, parent=None
) -> Operator:
    """Wrap a plan so each node accounts into its own trace span.

    The original operator tree is left untouched (plans are cached):
    every node is shallow-copied, its child links are redirected at the
    instrumented copies, and the copy is wrapped in a
    :class:`~repro.engine.operators.TracedOp`. Where the trace's caps
    drop a span, that subtree runs uninstrumented.
    """
    parent = trace.current if parent is None else parent
    if parent is None:
        return op
    return _wrap(op, trace, parent)


def _wrap(op: Operator, trace: TraceContext, parent) -> Operator:
    span = trace.attach(parent, describe(op))
    if span is None:
        return op
    clone = copy.copy(op)
    for attr in ("child", "left", "right"):
        inner = getattr(clone, attr, None)
        if isinstance(inner, Operator):
            setattr(clone, attr, _wrap(inner, trace, span))
    return TracedOp(clone, span)


#: The selectable execution disciplines, slowest (reference) first.
ENGINES = ("row", "vectorized", "columnar")

#: The engine used when nothing selects one explicitly.
DEFAULT_ENGINE = "columnar"


def resolve_engine(
    engine: Optional[str],
    vectorized: Optional[bool] = None,
    *,
    owner: str = "Engine",
) -> str:
    """Normalize the engine selection, honoring the deprecated boolean.

    ``vectorized`` is the pre-columnar spelling (``True`` → the batch
    engine, ``False`` → the row engine); passing it warns. An explicit
    ``engine`` always wins over the legacy knob.
    """
    if vectorized is not None:
        warn_deprecated(
            f"{owner}(vectorized=...) is deprecated; use "
            f"engine='vectorized' or engine='row'"
        )
        if engine is None:
            engine = "vectorized" if vectorized else "row"
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return engine


class Engine:
    """Plans and executes queries against one database.

    ``engine`` selects the execution discipline for non-lineage queries:

    - ``"row"`` — tuple-at-a-time interpretation; the semantic reference.
    - ``"vectorized"`` — batch-at-a-time over row chunks with compiled
      kernels (see :mod:`repro.engine.vector`).
    - ``"columnar"`` (default) — column-at-a-time over
      :class:`~repro.engine.columnar.ColumnBatch` with zone-map chunk
      pruning (see :mod:`repro.engine.columnar`).

    Lineage executions always take the row path, which is the only one
    that threads provenance. All disciplines produce bit-identical
    results. The pre-columnar ``vectorized=True/False`` boolean is still
    accepted but deprecated.
    """

    def __init__(
        self,
        database: Database,
        engine: Optional[str] = None,
        *,
        vectorized: Optional[bool] = None,
    ):
        self.database = database
        self.engine_name = resolve_engine(engine, vectorized)
        #: Canonical text → plan. Keying on the canonical form (not the
        #: raw string) lets ``select * from t`` and ``SELECT * FROM t``
        #: share one slot instead of planning twice.
        self._plan_cache: dict[str, Plan] = {}
        #: Raw text → canonical text memo, so repeated hot queries skip
        #: even the re-lex.
        self._canonical_memo: dict[str, str] = {}
        #: AST → plan. The enforcer's policy loop executes pre-parsed
        #: ASTs (frozen, hashable dataclasses); caching them keeps the
        #: operator objects — and the hash-join build caches they carry —
        #: alive across policy evaluations.
        self._ast_plan_cache: dict[ast.Query, Plan] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: Batch-path volume counters (``/metrics``).
        self.vector_batches = 0
        self.vector_rows = 0
        #: Columnar-path volume counters (``/metrics``).
        self.columnar_batches = 0
        self.columnar_rows = 0
        #: Bumped by :meth:`invalidate_plans`; holders of derived plan
        #: structures (the enforcer's shared-subplan DAGs) compare it to
        #: decide whether their rewrites are stale.
        self.plan_epoch = 0
        #: Shared-subplan DAG gauges/counters (``/metrics``): nodes
        #: merged in the current DAG set, and subtree executions avoided
        #: by replaying a memoized node.
        self.dag_shared_nodes = 0
        self.dag_saved_execs = 0

    @property
    def vectorized(self) -> bool:
        """Deprecated alias: True for any batched engine (not ``"row"``)."""
        return self.engine_name != "row"

    def _canonical_key(self, text: str) -> str:
        """The cache key for a textual query; raw text when unlexable
        (the planner's parse will raise the real error)."""
        key = self._canonical_memo.get(text)
        if key is None:
            try:
                key = canonical_sql(text)
            except LexError:
                key = text
            if len(self._canonical_memo) < 1024:
                self._canonical_memo[text] = key
        return key

    def plan(self, query: Union[str, ast.Query]) -> Plan:
        """Plan a query; both textual and AST queries get a tiny plan cache."""
        if isinstance(query, str):
            key = self._canonical_key(query)
            cached = self._plan_cache.get(key)
            if cached is not None:
                self.plan_cache_hits += 1
                return cached
            self.plan_cache_misses += 1
            plan = plan_query(parse(query), self.database)
            if len(self._plan_cache) < 256:
                self._plan_cache[key] = plan
            return plan
        cached = self._ast_plan_cache.get(query)
        if cached is not None:
            self.plan_cache_hits += 1
            return cached
        self.plan_cache_misses += 1
        plan = plan_query(query, self.database)
        if len(self._ast_plan_cache) < 256:
            self._ast_plan_cache[query] = plan
        return plan

    def invalidate_plans(self) -> None:
        """Drop cached plans (after schema changes); counters persist.

        The epoch bump also retires every structure *derived* from those
        plans — in particular the enforcer's shared-subplan DAGs and the
        batches their :class:`~repro.engine.dag.SharedNode`\\ s memoized.
        """
        self._plan_cache.clear()
        self._canonical_memo.clear()
        self._ast_plan_cache.clear()
        self.plan_epoch += 1

    def execute(
        self,
        query: Union[str, ast.Query],
        lineage: bool = False,
        trace: Optional[TraceContext] = None,
    ) -> Result:
        """Run a query and materialize its result."""
        plan = self.plan(query)
        op = plan.op
        if trace is not None:
            op = instrument_plan(op, trace)
        if not lineage and self.engine_name == "columnar":
            rows = []
            for cbatch in op.execute_columnar(self.database):
                self.columnar_batches += 1
                self.columnar_rows += cbatch.length
                rows.extend(cbatch.to_rows())
            return Result(columns=list(plan.columns), rows=rows)
        if not lineage and self.engine_name == "vectorized":
            rows = []
            for batch in op.execute_batch(self.database):
                self.vector_batches += 1
                self.vector_rows += len(batch)
                rows.extend(batch)
            return Result(columns=list(plan.columns), rows=rows)
        rows: list[Row] = []
        lineages: Optional[list[frozenset]] = [] if lineage else None
        for row, lin in op.execute(self.database, lineage):
            rows.append(row)
            if lineage:
                assert lineages is not None
                lineages.append(lin or frozenset())
        return Result(columns=list(plan.columns), rows=rows, lineages=lineages)

    def is_empty(self, query: Union[str, ast.Query]) -> bool:
        """True if the query returns no rows (stops at the first chunk)."""
        return self.plan_is_empty(self.plan(query).op)

    def plan_is_empty(self, op: Operator) -> bool:
        """Emptiness check over an already-built operator tree.

        Used directly by :class:`~repro.engine.dag.PolicyDag`, whose
        rewritten branch roots never pass through the plan caches.
        """
        if self.engine_name == "columnar":
            for cbatch in op.execute_columnar(self.database):
                self.columnar_batches += 1
                self.columnar_rows += cbatch.length
                return False
            return True
        if self.engine_name == "vectorized":
            for batch in op.execute_batch(self.database):
                self.vector_batches += 1
                self.vector_rows += len(batch)
                return False
            return True
        for _ in op.execute(self.database, False):
            return False
        return True

    def explain(self, query: Union[str, ast.Query], analyze: bool = False) -> str:
        """Render the physical plan as an indented operator tree.

        With ``analyze``, the plan is *executed* (discarding rows) with a
        span per operator, and every node is annotated with its observed
        row count and inclusive time.
        """
        plan = self.plan(query)
        if not analyze:
            return explain_plan(plan.op, plan.columns)
        # Generous caps: an explicit EXPLAIN ANALYZE should show every
        # node even for plans far larger than the hot-path budget.
        trace = TraceContext(
            "explain", max_depth=64, max_children=512, max_spans=4096
        )
        traced = instrument_plan(plan.op, trace, parent=trace.root)
        if self.engine_name == "columnar":
            for _ in traced.execute_columnar(self.database):
                pass
        elif self.engine_name == "vectorized":
            for _ in traced.execute_batch(self.database):
                pass
        else:
            for _ in traced.execute(self.database, False):
                pass
        return render_analyzed(trace.root, plan.columns)
