"""Query execution facade.

:class:`Engine` plans and runs SQL (text or AST) against a
:class:`~repro.engine.database.Database` and returns a :class:`Result`.
Passing ``lineage=True`` makes every result row carry the set of
``(table, tid)`` base tuples that contributed to it — the mechanism behind
the ``Provenance`` usage log and the §4.3 improved-partial-policy check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..sql import ast, parse
from .database import Database
from .planner import Plan, plan_query
from .table import Row


@dataclass
class Result:
    """The outcome of a query execution."""

    columns: list[str]
    rows: list[Row]
    lineages: Optional[list[frozenset]] = None
    #: Number of base-table rows read while executing (cost accounting).
    statements: int = 1

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def scalar(self):
        """The single value of a 1×1 result (None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> list:
        """All values of one output column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def lineage_tables(self) -> set[str]:
        """All base tables mentioned in any row's lineage."""
        if self.lineages is None:
            return set()
        tables: set[str] = set()
        for lineage in self.lineages:
            tables.update(table for table, _ in lineage)
        return tables


class Engine:
    """Plans and executes queries against one database."""

    def __init__(self, database: Database):
        self.database = database
        self._plan_cache: dict[str, Plan] = {}

    def plan(self, query: Union[str, ast.Query]) -> Plan:
        """Plan a query; textual queries get a tiny plan cache."""
        if isinstance(query, str):
            cached = self._plan_cache.get(query)
            if cached is not None:
                return cached
            plan = plan_query(parse(query), self.database)
            if len(self._plan_cache) < 256:
                self._plan_cache[query] = plan
            return plan
        return plan_query(query, self.database)

    def invalidate_plans(self) -> None:
        """Drop cached plans (after schema changes)."""
        self._plan_cache.clear()

    def execute(
        self, query: Union[str, ast.Query], lineage: bool = False
    ) -> Result:
        """Run a query and materialize its result."""
        plan = self.plan(query)
        rows: list[Row] = []
        lineages: Optional[list[frozenset]] = [] if lineage else None
        for row, lin in plan.op.execute(self.database, lineage):
            rows.append(row)
            if lineage:
                assert lineages is not None
                lineages.append(lin or frozenset())
        return Result(columns=list(plan.columns), rows=rows, lineages=lineages)

    def is_empty(self, query: Union[str, ast.Query]) -> bool:
        """True if the query returns no rows (stops at the first row)."""
        plan = self.plan(query)
        for _ in plan.op.execute(self.database, False):
            return False
        return True

    def explain(self, query: Union[str, ast.Query]) -> str:
        """Render the physical plan as an indented operator tree."""
        from .explain import explain_plan

        plan = self.plan(query)
        return explain_plan(plan.op, plan.columns)
