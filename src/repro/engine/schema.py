"""Table schemas for the engine catalog."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError


@dataclass(frozen=True)
class Column:
    """A named column. ``type_name`` is advisory (the engine is dynamically
    typed, like SQLite); it documents intent and feeds pretty-printing."""

    name: str
    type_name: str = "any"


@dataclass
class TableSchema:
    """An ordered list of columns with fast name → position lookup."""

    name: str
    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            self._index[column.name] = position

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._index

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None


def make_schema(name: str, column_names: list[str]) -> TableSchema:
    """Build a schema from bare column names (all dynamically typed)."""
    return TableSchema(name, [Column(column) for column in column_names])
