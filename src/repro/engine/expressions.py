"""Expression compilation.

Expressions are compiled once per query into Python closures evaluated per
row. The compiler is parameterized by two resolvers so the same code serves
both contexts the planner needs:

- *row context*: column refs resolve to positions in the concatenated
  FROM-row (plain scans and joins);
- *group context*: whole sub-expressions matching a GROUP BY key resolve to
  key slots and aggregate calls resolve to accumulator slots.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..errors import BindError, ExecutionError
from ..sql import ast
from .types import (
    SqlValue,
    arithmetic,
    compare,
    is_truthy,
    like,
    negate,
    sql_and,
    sql_not,
    sql_or,
)

RowFn = Callable[[tuple], SqlValue]
#: Resolves a column reference to a row function, or raises BindError.
ColumnResolver = Callable[[ast.ColumnRef], RowFn]
#: Optionally resolves a whole expression (used for group keys / aggregates).
ExprResolver = Callable[[ast.Expr], Optional[RowFn]]

#: Aggregate function names; the planner routes these to accumulators.
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "min", "max", "avg"})


def is_aggregate_call(expr: ast.Expr) -> bool:
    """True if ``expr`` is a call to an aggregate function."""
    return isinstance(expr, ast.FuncCall) and expr.name in AGGREGATE_FUNCTIONS


def contains_aggregate(expr: ast.Expr) -> bool:
    """True if any aggregate call appears under ``expr``."""
    return any(is_aggregate_call(node) for node in expr.walk())


def compile_expr(
    expr: ast.Expr,
    resolve_column: ColumnResolver,
    resolve_special: Optional[ExprResolver] = None,
) -> RowFn:
    """Compile ``expr`` into a row function.

    ``resolve_special`` is consulted first on every node; when it returns a
    function, that function is used for the whole subtree (this is how group
    keys and aggregate slots are injected). Without it, encountering an
    aggregate call is a bind error — aggregates are only legal in a group
    context.
    """
    if resolve_special is not None:
        special = resolve_special(expr)
        if special is not None:
            return special

    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ast.ColumnRef):
        return resolve_column(expr)

    if isinstance(expr, ast.Star):
        raise BindError("'*' is only allowed in a select list or COUNT(*)")

    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, resolve_column, resolve_special)
        if expr.op == "not":
            return lambda row: sql_not(operand(row))
        if expr.op == "-":
            return lambda row: negate(operand(row))
        raise BindError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, resolve_column, resolve_special)

    if isinstance(expr, ast.InList):
        needle = compile_expr(expr.needle, resolve_column, resolve_special)
        items = [
            compile_expr(item, resolve_column, resolve_special)
            for item in expr.items
        ]
        negated = expr.negated

        def in_list(row: tuple) -> SqlValue:
            value = needle(row)
            result: Optional[bool] = False
            for item in items:
                matched = compare("=", value, item(row))
                if matched is True:
                    result = True
                    break
                if matched is None:
                    result = None
            return sql_not(result) if negated else result

        return in_list

    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, resolve_column, resolve_special)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    if isinstance(expr, ast.CaseExpr):
        whens = [
            (
                compile_expr(cond, resolve_column, resolve_special),
                compile_expr(value, resolve_column, resolve_special),
            )
            for cond, value in expr.whens
        ]
        default = (
            compile_expr(expr.default, resolve_column, resolve_special)
            if expr.default is not None
            else None
        )

        def case(row: tuple) -> SqlValue:
            for cond, value in whens:
                if is_truthy(cond(row)):
                    return value(row)
            return default(row) if default is not None else None

        return case

    if isinstance(expr, ast.FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            raise BindError(
                f"aggregate {expr.name}() is not allowed in this context"
            )
        return _compile_scalar_function(expr, resolve_column, resolve_special)

    raise BindError(f"cannot compile expression node {type(expr).__name__}")


def _compile_binary(
    expr: ast.BinaryOp,
    resolve_column: ColumnResolver,
    resolve_special: Optional[ExprResolver],
) -> RowFn:
    left = compile_expr(expr.left, resolve_column, resolve_special)
    right = compile_expr(expr.right, resolve_column, resolve_special)
    op = expr.op

    if op == "and":
        return lambda row: sql_and(left(row), right(row))
    if op == "or":
        return lambda row: sql_or(left(row), right(row))
    if op == "like":
        return lambda row: like(left(row), right(row))
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return lambda row: compare(op, left(row), right(row))
    if op in ("+", "-", "*", "/", "%", "||"):
        return lambda row: arithmetic(op, left(row), right(row))
    raise BindError(f"unknown binary operator {op!r}")


_SCALAR_FUNCTIONS: dict[str, Callable[..., SqlValue]] = {}


def _scalar(name: str):
    def register(fn: Callable[..., SqlValue]):
        _SCALAR_FUNCTIONS[name] = fn
        return fn

    return register


@_scalar("abs")
def _fn_abs(value: SqlValue) -> SqlValue:
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExecutionError("abs() requires a numeric argument")
    return abs(value)


@_scalar("length")
def _fn_length(value: SqlValue) -> SqlValue:
    if value is None:
        return None
    if not isinstance(value, str):
        raise ExecutionError("length() requires a string argument")
    return len(value)


@_scalar("lower")
def _fn_lower(value: SqlValue) -> SqlValue:
    if value is None:
        return None
    if not isinstance(value, str):
        raise ExecutionError("lower() requires a string argument")
    return value.lower()


@_scalar("upper")
def _fn_upper(value: SqlValue) -> SqlValue:
    if value is None:
        return None
    if not isinstance(value, str):
        raise ExecutionError("upper() requires a string argument")
    return value.upper()


@_scalar("round")
def _fn_round(value: SqlValue, digits: SqlValue = 0) -> SqlValue:
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExecutionError("round() requires a numeric argument")
    if not isinstance(digits, int):
        raise ExecutionError("round() digits must be an integer")
    return round(value, digits)


@_scalar("coalesce")
def _fn_coalesce(*values: SqlValue) -> SqlValue:
    for value in values:
        if value is not None:
            return value
    return None


def _compile_scalar_function(
    expr: ast.FuncCall,
    resolve_column: ColumnResolver,
    resolve_special: Optional[ExprResolver],
) -> RowFn:
    try:
        fn = _SCALAR_FUNCTIONS[expr.name]
    except KeyError:
        raise BindError(f"unknown function {expr.name!r}") from None
    if expr.distinct:
        raise BindError(f"DISTINCT is not valid in scalar function {expr.name!r}")
    args = [
        compile_expr(arg, resolve_column, resolve_special) for arg in expr.args
    ]
    return lambda row: fn(*(arg(row) for arg in args))


def make_slot_resolver(positions: dict[str, int]) -> Callable[[str], RowFn]:
    """Build slot-accessor factories over a name → index mapping."""

    def accessor(name: str) -> RowFn:
        index = positions[name]
        return lambda row: row[index]

    return accessor


def constant_fn(value: SqlValue) -> RowFn:
    """A row function ignoring its input."""
    return lambda row: value


def compile_predicate(
    expr: ast.Expr,
    resolve_column: ColumnResolver,
    resolve_special: Optional[ExprResolver] = None,
) -> Callable[[tuple], bool]:
    """Compile a boolean expression into a strict True/False row test."""
    fn = compile_expr(expr, resolve_column, resolve_special)
    return lambda row: is_truthy(fn(row))


def eval_constant(expr: ast.Expr) -> SqlValue:
    """Evaluate an expression that must not reference any columns."""

    def no_columns(ref: ast.ColumnRef) -> RowFn:
        raise BindError(f"expression must be constant, found column {ref}")

    return compile_expr(expr, no_columns)(())


def references_only(expr: ast.Expr, tables: Sequence[str]) -> bool:
    """True if every qualified column ref under ``expr`` targets ``tables``."""
    allowed = {t.lower() for t in tables}
    return all(
        ref.table is None or ref.table.lower() in allowed
        for ref in ast.column_refs(expr)
    )
