"""Cross-policy shared-subplan DAG execution.

The enforcer checks every policy on every submitted query, and the
policies of one deployment overwhelmingly read the same usage-log
relations: the paper's P1-P6 all join ``Users`` with ``Provenance`` /
``Schema`` / ``Clock`` under near-identical pushed filters. Planned
independently, each policy re-scans, re-filters, and re-builds the same
hash joins — up to six times per check.

This module turns a set of independently planned policy branches into a
single DAG:

1. :func:`fingerprint` canonicalizes each plan subtree into a hashable
   key. Scans hash by table, index scans by (table, column, probe
   value), filters and group-bys by the planner-recorded ``origin``
   (normalized predicate / key expressions plus resolved column
   positions), joins by child fingerprints plus key positions. A node
   whose behavior cannot be proven from structure (arbitrary closures,
   projections) fingerprints to ``None`` and is never shared.
2. :class:`PolicyDag` counts fingerprints across all branches and
   rewrites each branch plan, replacing every subtree whose fingerprint
   appears more than once with a single :class:`SharedNode`. Rewrites
   clone operators shallowly (the ``instrument_plan`` idiom) so the
   engine's cached plans stay untouched; shared filters and joins carry
   the *union* of their consumers' ``out_needed`` columns so plan
   narrowing never starves a sibling branch.
3. :class:`SharedNode` executes its subtree at most once per check: the
   first consumer materializes the full output (keyed by the mutation
   versions of every base table underneath), later consumers replay the
   memoized batches. Memos self-invalidate when any underlying table
   mutates — the enforcer bumps the clock and log tables every check,
   while genuinely static subtrees stay warm across checks.

:meth:`PolicyDag.evaluate` additionally orders branches cheapest-first
(estimated by base-table rows plus operator count, deterministic across
engines) and short-circuits the check on the first firing policy.
"""

from __future__ import annotations

import copy
import time
from typing import Optional

from .columnar import ColumnBatch
from .operators import (
    DistinctOp,
    FilterOp,
    GroupOp,
    HashJoinOp,
    IndexScanOp,
    NestedLoopOp,
    Operator,
    ScanOp,
)

#: Sentinel distinguishing "no consumer recorded yet" from "a consumer
#: needs every column" (``out_needed is None``) during accumulation.
_UNSET = object()

_CHILD_ATTRS = ("child", "left", "right")


def fingerprint(op: Operator, memo: Optional[dict] = None) -> Optional[tuple]:
    """A hashable canonical key for ``op``'s subtree, or ``None``.

    Two operators with equal fingerprints are behaviorally
    interchangeable: same output rows, same column layout, for every
    database state. ``None`` means "cannot prove it" — such nodes are
    simply never shared. ``memo`` (keyed by operator identity) makes
    repeated calls over one tree linear.
    """
    if memo is None:
        memo = {}
    key = id(op)
    if key not in memo:
        memo[key] = _fingerprint(op, memo)
    return memo[key]


def _fingerprint(op: Operator, memo: dict) -> Optional[tuple]:
    if isinstance(op, ScanOp):
        return ("scan", op.table_name)
    if isinstance(op, IndexScanOp):
        try:
            value = op.value_fn(())
            hash(value)
        except Exception:
            return None
        return ("iscan", op.table_name, op.column, value)
    if isinstance(op, FilterOp):
        origin = getattr(op, "origin", None)
        child = fingerprint(op.child, memo)
        if origin is None or child is None:
            return None
        return ("filter", child, origin)
    if isinstance(op, HashJoinOp):
        if op.left_positions is None or op.right_positions is None:
            return None
        left = fingerprint(op.left, memo)
        right = fingerprint(op.right, memo)
        if left is None or right is None:
            return None
        return (
            "join",
            left,
            right,
            tuple(op.left_positions),
            tuple(op.right_positions),
        )
    if isinstance(op, NestedLoopOp):
        if op.predicate is not None:
            return None
        left = fingerprint(op.left, memo)
        right = fingerprint(op.right, memo)
        if left is None or right is None:
            return None
        return ("nloop", left, right)
    if isinstance(op, GroupOp):
        origin = getattr(op, "origin", None)
        child = fingerprint(op.child, memo)
        if origin is None or child is None:
            return None
        return ("group", child, origin)
    if isinstance(op, DistinctOp):
        child = fingerprint(op.child, memo)
        if child is None:
            return None
        return ("distinct", child)
    return None


def base_tables(op: Operator) -> frozenset:
    """Names of every base table scanned anywhere under ``op``."""
    tables: set = set()
    stack = [op]
    while stack:
        node = stack.pop()
        inner = getattr(node, "inner", None)  # TracedOp wrapper
        if isinstance(inner, Operator):
            stack.append(inner)
            continue
        if isinstance(node, (ScanOp, IndexScanOp)):
            tables.add(node.table_name)
        for attr in _CHILD_ATTRS:
            child = getattr(node, attr, None)
            if isinstance(child, Operator):
                stack.append(child)
    return frozenset(tables)


def operator_count(op: Operator) -> int:
    """Number of operators under (and including) ``op``."""
    count = 0
    stack = [op]
    while stack:
        node = stack.pop()
        count += 1
        for attr in _CHILD_ATTRS:
            child = getattr(node, attr, None)
            if isinstance(child, Operator):
                stack.append(child)
    return count


class SharedNode(Operator):
    """A memoized subtree consumed by several policy branches.

    The first execution under a given database state materializes the
    subtree's *entire* output before yielding anything: consumers such
    as ``Engine.plan_is_empty`` abandon their iterator after the first
    batch, and a partially-built memo would corrupt every later
    consumer. Memos are keyed by the mutation versions of the base
    tables underneath, so any table change (the enforcer touches the
    clock and staged logs every check) invalidates them automatically.
    """

    def __init__(self, child: Operator, engine, tables: frozenset):
        self.child = child
        self.engine = engine
        self.tables = tuple(sorted(tables))
        #: Number of branch plans referencing this node (EXPLAIN shows it
        #: as ``[shared=N]``).
        self.consumers = 1
        self._memo: dict[str, tuple[tuple, list]] = {}

    def _versions(self, database) -> tuple:
        return tuple(database.table(name).version for name in self.tables)

    #: Memo conversions between the engine disciplines: a fresh memo in
    #: the source discipline is transposed instead of re-executing the
    #: subtree. Matters when consumers mix disciplines — a columnar
    #: pipeline whose parent nested-loop runs batch-wise would otherwise
    #: rebuild the shared join once per discipline per check.
    _CONVERSIONS = {
        "batch": (
            "columnar",
            lambda out: [rows for rows in (cb.to_rows() for cb in out) if rows],
        ),
        "columnar": (
            "batch",
            lambda out: [ColumnBatch.from_rows(rows) for rows in out if rows],
        ),
    }

    def _materialize(self, discipline: str, database, produce) -> list:
        versions = self._versions(database)
        memo = self._memo.get(discipline)
        if memo is not None and memo[0] == versions:
            self.engine.dag_saved_execs += 1
            return memo[1]
        conversion = self._CONVERSIONS.get(discipline)
        if conversion is not None:
            source, convert = conversion
            other = self._memo.get(source)
            if other is not None and other[0] == versions:
                output = convert(other[1])
                self._memo[discipline] = (versions, output)
                self.engine.dag_saved_execs += 1
                return output
        output = list(produce())
        self._memo[discipline] = (versions, output)
        return output

    def execute(self, database, lineage):
        discipline = "lineage" if lineage else "row"
        yield from self._materialize(
            discipline, database, lambda: self.child.execute(database, lineage)
        )

    def execute_batch(self, database):
        yield from self._materialize(
            "batch", database, lambda: self.child.execute_batch(database)
        )

    def execute_columnar(self, database):
        yield from self._materialize(
            "columnar", database, lambda: self.child.execute_columnar(database)
        )


class _Branch:
    """One policy branch of a :class:`PolicyDag`."""

    __slots__ = ("key", "root", "tables", "op_count", "index")

    def __init__(self, key, root, tables, op_count, index):
        self.key = key
        self.root = root
        self.tables = tables
        self.op_count = op_count
        self.index = index


class PolicyDag:
    """The full policy set as one DAG of (partially shared) branch plans.

    ``branches`` is a list of ``(key, plan)`` pairs — the key is opaque
    to this module (the enforcer passes its runtime policy records).
    Plans are rewritten via shallow clones; the originals (typically the
    engine's cached plans) are never mutated.
    """

    def __init__(self, engine, branches):
        self.engine = engine
        self.nodes: dict = {}
        fp_memo: dict = {}
        counts: dict = {}
        needed: dict = {}
        for _, plan in branches:
            self._collect(plan.op, fp_memo, counts, needed)
        self.entries: list[_Branch] = []
        for index, (key, plan) in enumerate(branches):
            root = self._rewrite(plan.op, fp_memo, counts, needed)
            self.entries.append(
                _Branch(
                    key,
                    root,
                    base_tables(plan.op),
                    operator_count(plan.op),
                    index,
                )
            )
        self.shared_count = len(self.nodes)

    def _collect(self, op, fp_memo, counts, needed):
        fp = fingerprint(op, fp_memo)
        if fp is not None:
            counts[fp] = counts.get(fp, 0) + 1
            if isinstance(op, (FilterOp, HashJoinOp)):
                out = op.out_needed
                current = needed.get(fp, _UNSET)
                if current is _UNSET:
                    needed[fp] = out
                elif current is not None:
                    needed[fp] = None if out is None else current | out
        for attr in _CHILD_ATTRS:
            child = getattr(op, attr, None)
            if isinstance(child, Operator):
                self._collect(child, fp_memo, counts, needed)

    def _rewrite(self, op, fp_memo, counts, needed):
        fp = fingerprint(op, fp_memo)
        shared = fp is not None and counts.get(fp, 0) >= 2
        if shared:
            node = self.nodes.get(fp)
            if node is not None:
                node.consumers += 1
                return node
        clone = copy.copy(op)
        for attr in _CHILD_ATTRS:
            child = getattr(clone, attr, None)
            if isinstance(child, Operator):
                setattr(
                    clone, attr, self._rewrite(child, fp_memo, counts, needed)
                )
        if not shared:
            return clone
        if isinstance(clone, (FilterOp, HashJoinOp)):
            out = needed.get(fp, _UNSET)
            if out is not _UNSET:
                # The union of every consumer's narrowed column set: the
                # shared output must satisfy its hungriest consumer.
                clone.out_needed = out
        node = SharedNode(clone, self.engine, base_tables(op))
        self.nodes[fp] = node
        return node

    def evaluate(self):
        """Check all branches, cheapest first, short-circuiting.

        Returns ``(fired_key_or_None, timings)`` where ``timings`` is
        ``[(key, seconds), ...]`` for the branches actually evaluated,
        in evaluation order. The cost estimate (base-table rows plus
        operator count, original order as tie-break) depends only on
        table sizes, so the evaluation order — and therefore which
        firing policy is reported — is deterministic across engines.
        """
        database = self.engine.database

        def cost(entry):
            rows = sum(len(database.table(name)) for name in entry.tables)
            return (rows + entry.op_count, entry.index)

        timings: list[tuple] = []
        for entry in sorted(self.entries, key=cost):
            started = time.perf_counter()
            empty = self.engine.plan_is_empty(entry.root)
            timings.append((entry.key, time.perf_counter() - started))
            if not empty:
                return entry.key, timings
        return None, timings
