"""Value semantics for the engine: SQL three-valued logic and coercions.

Values are plain Python objects: ``int``, ``float``, ``str``, ``bool`` and
``None`` (SQL NULL). The helpers here centralize NULL propagation so the
expression compiler stays small: any comparison or arithmetic involving
NULL yields NULL, and ``AND``/``OR`` follow Kleene logic.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Optional, Union

from ..errors import ExecutionError

SqlValue = Union[int, float, str, bool, None]
#: Three-valued booleans: True, False, or None (unknown).
SqlBool = Optional[bool]

_NUMERIC = (int, float)


def is_truthy(value: SqlBool) -> bool:
    """WHERE/HAVING keep a row only when the predicate is strictly True."""
    return value is True


def sql_and(left: SqlBool, right: SqlBool) -> SqlBool:
    """Kleene AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: SqlBool, right: SqlBool) -> SqlBool:
    """Kleene OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: SqlBool) -> SqlBool:
    """Kleene NOT."""
    if value is None:
        return None
    return not value


def _comparable(left: SqlValue, right: SqlValue) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, _NUMERIC) and isinstance(right, _NUMERIC):
        return True
    return isinstance(left, str) and isinstance(right, str)


def compare(op: str, left: SqlValue, right: SqlValue) -> SqlBool:
    """Evaluate a comparison operator with NULL propagation.

    Equality between values of different type families is False (not an
    error) so that heterogeneous log columns behave predictably; ordering
    between incompatible types is an :class:`ExecutionError`.
    """
    if left is None or right is None:
        return None
    if op == "=":
        if not _comparable(left, right):
            return False
        return left == right
    if op == "<>":
        if not _comparable(left, right):
            return True
        return left != right
    if not _comparable(left, right):
        raise ExecutionError(
            f"cannot order values of incompatible types: {left!r} {op} {right!r}"
        )
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison operator: {op}")


# Per-operator specializations of :func:`compare`, emitted by the
# vectorized kernel compiler (:mod:`repro.engine.vector`) to skip the
# operator-string dispatch on every row. Each must mirror the matching
# branch of ``compare`` exactly: same NULL propagation, same cross-family
# results, same error text. The ``int``/``int`` fast paths are semantic
# no-ops (``_comparable`` is always True there; ``bool`` has its own
# ``__class__`` so it never takes them). ``test_vectorized`` holds each
# specialization bit-identical to ``compare`` over a value matrix.


def compare_eq(left: SqlValue, right: SqlValue) -> SqlBool:
    if left is None or right is None:
        return None
    if left.__class__ is int and right.__class__ is int:
        return left == right
    if not _comparable(left, right):
        return False
    return left == right


def compare_ne(left: SqlValue, right: SqlValue) -> SqlBool:
    if left is None or right is None:
        return None
    if left.__class__ is int and right.__class__ is int:
        return left != right
    if not _comparable(left, right):
        return True
    return left != right


def compare_lt(left: SqlValue, right: SqlValue) -> SqlBool:
    if left is None or right is None:
        return None
    if left.__class__ is int and right.__class__ is int:
        return left < right
    if not _comparable(left, right):
        raise ExecutionError(
            f"cannot order values of incompatible types: {left!r} < {right!r}"
        )
    return left < right


def compare_le(left: SqlValue, right: SqlValue) -> SqlBool:
    if left is None or right is None:
        return None
    if left.__class__ is int and right.__class__ is int:
        return left <= right
    if not _comparable(left, right):
        raise ExecutionError(
            f"cannot order values of incompatible types: {left!r} <= {right!r}"
        )
    return left <= right


def compare_gt(left: SqlValue, right: SqlValue) -> SqlBool:
    if left is None or right is None:
        return None
    if left.__class__ is int and right.__class__ is int:
        return left > right
    if not _comparable(left, right):
        raise ExecutionError(
            f"cannot order values of incompatible types: {left!r} > {right!r}"
        )
    return left > right


def compare_ge(left: SqlValue, right: SqlValue) -> SqlBool:
    if left is None or right is None:
        return None
    if left.__class__ is int and right.__class__ is int:
        return left >= right
    if not _comparable(left, right):
        raise ExecutionError(
            f"cannot order values of incompatible types: {left!r} >= {right!r}"
        )
    return left >= right


def arithmetic(op: str, left: SqlValue, right: SqlValue) -> SqlValue:
    """Evaluate an arithmetic or string operator with NULL propagation."""
    if left is None or right is None:
        return None
    if op == "||":
        return _to_text(left) + _to_text(right)
    if not isinstance(left, _NUMERIC) or not isinstance(right, _NUMERIC):
        raise ExecutionError(
            f"non-numeric operands for {op!r}: {left!r} and {right!r}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        result = left / right
        # Match integer division semantics of most engines only when exact,
        # to keep arithmetic unsurprising in policies.
        if isinstance(left, int) and isinstance(right, int) and left % right == 0:
            return left // right
        return result
    if op == "%":
        if right == 0:
            raise ExecutionError("division by zero")
        return left % right
    raise ExecutionError(f"unknown arithmetic operator: {op}")


def negate(value: SqlValue) -> SqlValue:
    """Unary minus with NULL propagation."""
    if value is None:
        return None
    if not isinstance(value, _NUMERIC) or isinstance(value, bool):
        raise ExecutionError(f"cannot negate non-numeric value {value!r}")
    return -value


def _to_text(value: SqlValue) -> str:
    if isinstance(value, str):
        return value
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def like(value: SqlValue, pattern: SqlValue) -> SqlBool:
    """SQL LIKE with ``%`` and ``_`` wildcards."""
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise ExecutionError("LIKE requires string operands")
    return _like_regex(pattern).match(value) is not None


def sort_key(value: SqlValue):
    """Total order over heterogeneous values for ORDER BY / DISTINCT.

    NULLs sort last; values order within their type family, with type
    families ordered deterministically (bool < numeric < str).
    """
    if value is None:
        return (3, 0)
    if isinstance(value, bool):
        return (0, value)
    if isinstance(value, _NUMERIC):
        return (1, value)
    return (2, value)
