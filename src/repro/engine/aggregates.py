"""Aggregate accumulators for the group-by operator.

The planner compiles each distinct aggregate call into a factory; the group
operator instantiates one accumulator per group and feeds it every row of
the group. ``COUNT(DISTINCT x)`` — the workhorse of the paper's policies —
is supported for every aggregate via a distinct-filtering wrapper.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import BindError, ExecutionError
from ..sql import ast
from .expressions import RowFn
from .types import SqlValue


class Accumulator:
    """Incremental aggregate state."""

    def add(self, row: tuple) -> None:
        raise NotImplementedError

    def add_batch(self, rows: list) -> None:
        """Fold a whole chunk of rows (batch execution path)."""
        add = self.add
        for row in rows:
            add(row)

    def result(self) -> SqlValue:
        raise NotImplementedError


class _CountStar(Accumulator):
    def __init__(self) -> None:
        self._count = 0

    def add(self, row: tuple) -> None:
        self._count += 1

    def add_batch(self, rows: list) -> None:
        self._count += len(rows)

    def result(self) -> SqlValue:
        return self._count


class _Count(Accumulator):
    def __init__(self, arg: RowFn):
        self._arg = arg
        self._count = 0

    def add(self, row: tuple) -> None:
        if self._arg(row) is not None:
            self._count += 1

    def result(self) -> SqlValue:
        return self._count


class _Sum(Accumulator):
    def __init__(self, arg: RowFn):
        self._arg = arg
        self._total: Optional[float] = None

    def add(self, row: tuple) -> None:
        value = self._arg(row)
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"sum() over non-numeric value {value!r}")
        self._total = value if self._total is None else self._total + value

    def result(self) -> SqlValue:
        return self._total


class _Avg(Accumulator):
    def __init__(self, arg: RowFn):
        self._arg = arg
        self._total = 0.0
        self._count = 0

    def add(self, row: tuple) -> None:
        value = self._arg(row)
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"avg() over non-numeric value {value!r}")
        self._total += value
        self._count += 1

    def result(self) -> SqlValue:
        if self._count == 0:
            return None
        return self._total / self._count


class _MinMax(Accumulator):
    def __init__(self, arg: RowFn, keep_smaller: bool):
        self._arg = arg
        self._keep_smaller = keep_smaller
        self._best: SqlValue = None

    def add(self, row: tuple) -> None:
        value = self._arg(row)
        if value is None:
            return
        if self._best is None:
            self._best = value
            return
        try:
            replace = value < self._best if self._keep_smaller else value > self._best
        except TypeError:
            raise ExecutionError(
                f"min/max over incomparable values {value!r} and {self._best!r}"
            ) from None
        if replace:
            self._best = value

    def result(self) -> SqlValue:
        return self._best


class _DistinctWrapper(Accumulator):
    """Feeds each distinct non-duplicate argument value to an inner state.

    The wrapped accumulator still receives the original row; distinctness is
    judged on the argument value, matching ``agg(DISTINCT x)`` semantics.
    """

    def __init__(self, arg: RowFn, inner: Accumulator):
        self._arg = arg
        self._inner = inner
        self._seen: set = set()

    def add(self, row: tuple) -> None:
        value = self._arg(row)
        if value is None:
            return
        marker = (type(value).__name__, value) if isinstance(value, bool) else value
        if marker in self._seen:
            return
        self._seen.add(marker)
        self._inner.add(row)

    def result(self) -> SqlValue:
        return self._inner.result()


AccumulatorFactory = Callable[[], Accumulator]


def make_accumulator_factory(
    call: ast.FuncCall, compile_arg: Callable[[ast.Expr], RowFn]
) -> AccumulatorFactory:
    """Build a factory of accumulators for one aggregate call.

    ``compile_arg`` compiles the argument expression in the pre-aggregation
    row context.
    """
    name = call.name
    if name == "count" and (not call.args or isinstance(call.args[0], ast.Star)):
        if call.distinct:
            raise BindError("COUNT(DISTINCT *) is not valid SQL")
        return _CountStar

    if len(call.args) != 1:
        raise BindError(f"aggregate {name}() takes exactly one argument")
    arg = compile_arg(call.args[0])

    def plain_factory() -> Accumulator:
        if name == "count":
            return _Count(arg)
        if name == "sum":
            return _Sum(arg)
        if name == "avg":
            return _Avg(arg)
        if name == "min":
            return _MinMax(arg, keep_smaller=True)
        if name == "max":
            return _MinMax(arg, keep_smaller=False)
        raise BindError(f"unknown aggregate {name!r}")

    if call.distinct:
        return lambda: _DistinctWrapper(arg, plain_factory())
    return plain_factory
