"""In-memory tables with stable tuple identifiers, stored column-wise.

Each row receives a monotonically increasing tuple id (tid) when inserted.
Tids are the currency of lineage tracking (:mod:`repro.engine.lineage`) and
of log compaction, whose *mark* phase collects the tids to retain and whose
*delete* phase removes the rest.

Storage is columnar: one :class:`~repro.engine.columnar.ColumnVector` per
column (typed ``array`` storage with null bitmaps where the values allow,
plain lists otherwise). The row-tuple view (:meth:`rows`) is a derived
cache — built lazily, maintained incrementally across appends — kept for
the row/batch execution paths, WAL/snapshot serialization and compaction;
engine operators on the columnar path read columns directly via
:meth:`column_values` / :meth:`chunks` and never materialize tuples.

Tables also carry a monotone **mutation version**: every change to the row
set bumps it. Derived structures built from a snapshot of the rows (hash
indexes, zone maps, range indexes, the tid→position map, and the
executor's cached hash-join build sides) are valid exactly as long as the
version they were built at.

Per-chunk **zone maps** (:meth:`zone_map`) summarize min/max/null-count
per :data:`~repro.engine.columnar.CHUNK_SIZE` rows so pushed-down
predicates can skip chunks, and sorted **range indexes**
(:meth:`range_positions`) answer single-conjunct range predicates by
bisection; both are lazy, per-column, and version-checked.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, Optional, Sequence

from ..errors import EngineError
from .columnar import (
    CHUNK_SIZE,
    ColumnBatch,
    ColumnVector,
    build_zone_entry,
    value_family,
)
from .schema import TableSchema, make_schema
from .types import SqlValue

Row = tuple  # tuple[SqlValue, ...], kept short for signature readability


class Table:
    """A bag of rows plus per-row tuple ids, stored as column vectors."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        #: One typed vector per column; the authoritative store.
        self._columns: list[ColumnVector] = [
            ColumnVector() for _ in range(schema.arity)
        ]
        #: Row count, tracked explicitly (zero-arity tables have no vectors).
        self._length = 0
        self._tids: list[int] = []
        self._next_tid = 0
        #: Lazily built hash indexes: column position → value → row indexes.
        #: Appends extend them in place (log tables grow once per query;
        #: rebuilding per mutation made every index probe O(table));
        #: structural mutations (delete/clear/replace) drop them.
        self._indexes: dict[int, dict] = {}
        #: False while the inner index dicts are shared with a clone; the
        #: next append copies them before extending in place.
        self._indexes_owned = True
        #: Lazy tid → row position map (see :meth:`tid_positions`).
        self._tid_pos: Optional[dict[int, int]] = None
        #: Monotone mutation counter; see the module docstring.
        self._version = 0
        #: Derived row-tuple view; appended to in step with inserts while
        #: warm, dropped entirely by deletes (see :meth:`rows`).
        self._rows_cache: Optional[list[Row]] = None
        #: position → (version built at, per-chunk zone entries).
        self._zone_maps: dict[int, tuple] = {}
        #: position → (version built at, sorted index or None if unusable).
        self._range_indexes: dict[int, tuple] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(
        cls, name: str, column_names: list[str], rows: Iterable[Sequence[SqlValue]]
    ) -> "Table":
        table = cls(make_schema(name, column_names))
        table.insert_many(rows)
        return table

    # -- basic accessors -----------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def version(self) -> int:
        """Monotone mutation version (bumped once per mutating call)."""
        return self._version

    def __len__(self) -> int:
        return self._length

    def rows(self) -> list[Row]:
        """The current rows as tuples (do not mutate the returned list).

        This is the *derived* view now — one ``zip`` over the decoded
        columns, cached until a structural mutation and extended in place
        by appends.

        .. deprecated:: hot paths
           New engine operators must not materialize rows; use
           :meth:`column`, :meth:`column_values`, :meth:`chunks`, and
           :meth:`null_mask` instead. ``rows()`` remains supported for
           the row/batch execution disciplines and bulk persistence
           (snapshot/WAL serialization), where whole-tuple access is
           the point.
        """
        cache = self._rows_cache
        if cache is None:
            if self._columns:
                cache = list(zip(*(vec.values() for vec in self._columns)))
            else:
                cache = [()] * self._length
            self._rows_cache = cache
        return cache

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Yield ``(tid, row)`` pairs in insertion order."""
        return zip(self._tids, self.rows())

    def tids(self) -> list[int]:
        return self._tids

    def tid_positions(self) -> dict:
        """The lazy tid → row-position map (rebuilt after any mutation).

        Shared by :meth:`row_for_tid` and the log store's insert phase,
        which resolves the marked tids of a compaction pass in one build
        instead of one linear scan each.
        """
        positions = self._tid_pos
        if positions is None:
            positions = {tid: pos for pos, tid in enumerate(self._tids)}
            self._tid_pos = positions
        return positions

    def row_for_tid(self, tid: int) -> Row:
        """Fetch a row by tuple id through the lazy tid→position map."""
        try:
            return self.rows()[self.tid_positions()[tid]]
        except KeyError:
            raise EngineError(
                f"table {self.name!r} has no tuple with tid {tid}"
            ) from None

    # -- columnar accessors --------------------------------------------------

    def column(self, name: str) -> ColumnVector:
        """The typed column vector for ``name`` (read-only for callers)."""
        return self._columns[self.schema.position(name)]

    def column_vector(self, position: int) -> ColumnVector:
        return self._columns[position]

    def column_values(self, position: int) -> list:
        """One column decoded as a plain list (NULL as ``None``).

        Returns the vector's cached decode — callers must not mutate it.
        """
        return self._columns[position].values()

    def columns_decoded(self) -> list:
        """Every column decoded (the whole-table scan batch)."""
        return [vec.values() for vec in self._columns]

    def clean_flags(self) -> list:
        """Per column: NULL-free exact-numeric storage (aggregate fast paths)."""
        return [vec.is_clean_numeric() for vec in self._columns]

    def null_mask(self, name: str) -> bytes:
        """The null bitmap of one column (bit ``i`` set ⇔ row ``i`` NULL)."""
        return self.column(name).null_bitmap()

    def chunk_spans(self) -> list:
        """``(start, end)`` spans of :data:`CHUNK_SIZE`-row chunks."""
        length = self._length
        return [
            (start, min(start + CHUNK_SIZE, length))
            for start in range(0, length, CHUNK_SIZE)
        ]

    def chunks(self) -> Iterator[ColumnBatch]:
        """The table as column batches of at most :data:`CHUNK_SIZE` rows."""
        decoded = self.columns_decoded()
        clean = self.clean_flags()
        for start, end in self.chunk_spans():
            yield ColumnBatch(
                [col[start:end] for col in decoded], end - start, clean=list(clean)
            )

    # -- zone maps and range indexes ----------------------------------------

    def zone_map(self, position: int) -> list:
        """Per-chunk :class:`~repro.engine.columnar.ZoneEntry` summaries.

        Built lazily per column and kept until the next mutation; an O(n)
        build that costs about one scan, so consulting it is never worse
        than the scan it replaces.
        """
        cached = self._zone_maps.get(position)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        values = self.column_values(position)
        entries = [
            build_zone_entry(values[start:end])
            for start, end in self.chunk_spans()
        ]
        self._zone_maps[position] = (self._version, entries)
        return entries

    def has_fresh_range_index(self, position: int) -> bool:
        entry = self._range_indexes.get(position)
        return (
            entry is not None and entry[0] == self._version and entry[1] is not None
        )

    def _build_range_index(self, position: int):
        values = self.column_values(position)
        pairs = [(v, i) for i, v in enumerate(values) if v is not None]
        if not pairs:
            return ([], [], None)
        kinds = set(map(type, (v for v, _ in pairs)))
        if kinds <= {int, float}:
            family = "num"
            if float in kinds and any(v != v for v, _ in pairs):
                return None  # NaN breaks the sort order; index unusable
        elif kinds == {str}:
            family = "str"
        elif kinds == {bool}:
            family = "bool"
        else:
            return None
        pairs.sort()
        return ([v for v, _ in pairs], [i for _, i in pairs], family)

    def range_positions(
        self, position: int, op: str, const: SqlValue
    ) -> Optional[list]:
        """Row positions satisfying ``column <op> const`` via the sorted
        range index, in insertion order; ``None`` when the index cannot
        answer (mixed families — the caller scans so comparison errors
        surface exactly as they would row-wise).
        """
        entry = self._range_indexes.get(position)
        if entry is None or entry[0] != self._version:
            entry = (self._version, self._build_range_index(position))
            self._range_indexes[position] = entry
        index = entry[1]
        if index is None:
            return None
        sorted_values, sorted_positions, family = index
        if const is None:
            return []  # comparison with NULL is never True
        const_fam = value_family(const)
        if const_fam is None or (family is not None and const_fam != family):
            return None  # cross-family ordering raises; scan instead
        if op == "<":
            selected = sorted_positions[: bisect_left(sorted_values, const)]
        elif op == "<=":
            selected = sorted_positions[: bisect_right(sorted_values, const)]
        elif op == ">":
            selected = sorted_positions[bisect_right(sorted_values, const) :]
        elif op == ">=":
            selected = sorted_positions[bisect_left(sorted_values, const) :]
        elif op == "=":
            lo = bisect_left(sorted_values, const)
            hi = bisect_right(sorted_values, const)
            selected = sorted_positions[lo:hi]
        else:
            return None
        return sorted(selected)

    # -- hash indexes -----------------------------------------------------------

    def index_probe(self, column: int, value: SqlValue) -> list[tuple[int, Row]]:
        """``(tid, row)`` pairs where ``row[column] == value``.

        Builds a hash index on first use; mutations invalidate it. NULL is
        never indexed (SQL equality with NULL is unknown).
        """
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for position, key in enumerate(self.column_values(column)):
                if key is not None:
                    index.setdefault(key, []).append(position)
            self._indexes[column] = index
        if value is None:
            return []
        try:
            positions = index.get(value, ())
        except TypeError:  # unhashable probe value
            return []
        if not positions:
            return []
        rows = self.rows()
        tids = self._tids
        return [(tids[p], rows[p]) for p in positions]

    def _invalidate_indexes(self) -> None:
        self._version += 1
        self._tid_pos = None
        if self._indexes:
            self._indexes = {}
            self._indexes_owned = True

    def _note_append(self, added: list, base: int) -> None:
        """Version bump for an append-only mutation.

        Hash indexes are extended in place with the appended rows instead
        of being dropped — the probe cost stays O(matches) as the log
        grows. Inner dicts shared with a clone are copied first (see
        :meth:`clone`).
        """
        self._version += 1
        self._tid_pos = None
        if not self._indexes:
            return
        if not self._indexes_owned:
            self._indexes = {
                column: {key: list(positions) for key, positions in index.items()}
                for column, index in self._indexes.items()
            }
            self._indexes_owned = True
        for column, index in self._indexes.items():
            for offset, row in enumerate(added):
                key = row[column]
                if key is not None:
                    index.setdefault(key, []).append(base + offset)

    # -- mutation --------------------------------------------------------------

    def _append_rows(self, added: list) -> None:
        """Append pre-validated row tuples to the column store."""
        for position, vec in enumerate(self._columns):
            vec.extend([row[position] for row in added])
        self._length += len(added)
        if self._rows_cache is not None:
            self._rows_cache.extend(added)

    def insert(self, row: Sequence[SqlValue]) -> int:
        """Insert one row; returns its tid."""
        if len(row) != self.schema.arity:
            raise EngineError(
                f"arity mismatch inserting into {self.name!r}: "
                f"expected {self.schema.arity} values, got {len(row)}"
            )
        tid = self._next_tid
        self._next_tid += 1
        added = [tuple(row)]
        base = self._length
        self._append_rows(added)
        self._tids.append(tid)
        self._note_append(added, base)
        return tid

    def insert_many(self, rows: Iterable[Sequence[SqlValue]]) -> list[int]:
        """Bulk append: one arity pass, one version bump, one invalidation."""
        arity = self.schema.arity
        added: list[Row] = []
        for row in rows:
            if len(row) != arity:
                raise EngineError(
                    f"arity mismatch inserting into {self.name!r}: "
                    f"expected {arity} values, got {len(row)}"
                )
            added.append(tuple(row))
        if not added:
            return []
        first = self._next_tid
        tids = list(range(first, first + len(added)))
        self._next_tid = first + len(added)
        base = self._length
        self._append_rows(added)
        self._tids.extend(tids)
        self._note_append(added, base)
        return tids

    def insert_with_tids(
        self, rows: Sequence[Sequence[SqlValue]], tids: Sequence[int]
    ) -> None:
        """Insert rows under caller-assigned tids (WAL replay).

        Recovery must reproduce the exact tids the original run allocated
        (compaction marks and lineage reference them), so the normal
        counter is bypassed and then advanced past the largest tid used.
        """
        if len(rows) != len(tids):
            raise EngineError(
                f"insert_with_tids into {self.name!r}: "
                f"{len(rows)} rows vs {len(tids)} tids"
            )
        added: list[Row] = []
        for row in rows:
            if len(row) != self.schema.arity:
                raise EngineError(
                    f"arity mismatch inserting into {self.name!r}: "
                    f"expected {self.schema.arity} values, got {len(row)}"
                )
            added.append(tuple(row))
        base = self._length
        self._append_rows(added)
        self._tids.extend(tids)
        if tids:
            self._next_tid = max(self._next_tid, max(tids) + 1)
        self._note_append(added, base)

    @property
    def next_tid(self) -> int:
        """The tid the next insert will receive."""
        return self._next_tid

    def advance_tid(self, next_tid: int) -> None:
        """Move the tid counter forward to at least ``next_tid``.

        WAL replay uses this to account for tids consumed by increments
        that never reached disk (rejected queries, discarded relations):
        the rows are gone but the counter must not hand their ids out
        again.
        """
        self._next_tid = max(self._next_tid, next_tid)

    def delete_tids(self, doomed: set[int]) -> int:
        """Remove all rows whose tid is in ``doomed``; returns removal count."""
        if not doomed:
            return 0
        kept_positions = [
            position
            for position, tid in enumerate(self._tids)
            if tid not in doomed
        ]
        removed = self._length - len(kept_positions)
        if removed == 0:
            return 0
        self._columns = [vec.take(kept_positions) for vec in self._columns]
        self._tids = [self._tids[p] for p in kept_positions]
        self._length = len(kept_positions)
        self._rows_cache = None
        self._invalidate_indexes()
        return removed

    def retain_tids(self, keep: set[int]) -> int:
        """Keep only rows whose tid is in ``keep``; returns removal count."""
        doomed = {tid for tid in self._tids if tid not in keep}
        return self.delete_tids(doomed)

    def clear(self) -> None:
        """Remove all rows (tids keep increasing; they are never reused)."""
        self._columns = [ColumnVector() for _ in range(self.schema.arity)]
        self._length = 0
        self._tids = []
        self._rows_cache = None
        self._invalidate_indexes()

    def replace_contents(
        self,
        rows: Sequence[Sequence[SqlValue]],
        tids: Sequence[int],
        next_tid: int,
    ) -> None:
        """Swap in a full row set under caller-assigned tids.

        The snapshot/WAL restore path uses this instead of poking at
        storage internals: it rebuilds the column vectors, adopts the
        stored tids verbatim, and bumps the version so every derived
        structure rebuilds.
        """
        if len(rows) != len(tids):
            raise EngineError(
                f"replace_contents on {self.name!r}: "
                f"{len(rows)} rows vs {len(tids)} tids"
            )
        self._columns = [ColumnVector() for _ in range(self.schema.arity)]
        self._length = 0
        self._tids = list(tids)
        self._rows_cache = None
        added = [tuple(row) for row in rows]
        for row in added:
            if len(row) != self.schema.arity:
                raise EngineError(
                    f"arity mismatch inserting into {self.name!r}: "
                    f"expected {self.schema.arity} values, got {len(row)}"
                )
        if added:
            for position, vec in enumerate(self._columns):
                vec.extend([row[position] for row in added])
            self._length = len(added)
        self._next_tid = next_tid
        self._invalidate_indexes()

    def clone(self) -> "Table":
        """Cheap copy: column vectors are shared copy-on-write.

        Derived structures ride along: the hash indexes, tid map and
        version carry over, so per-shard clones of a static catalog don't
        re-pay index builds. The inner index dicts are shared
        copy-on-write — both sides drop ownership here and the next
        append on either side copies before extending in place; the
        row-tuple cache is *not* shared (appends extend it in place) and
        rebuilds lazily on the clone.
        """
        copy = Table(self.schema)
        copy._columns = [vec.clone() for vec in self._columns]
        copy._length = self._length
        copy._tids = list(self._tids)
        copy._next_tid = self._next_tid
        copy._indexes = dict(self._indexes)
        copy._indexes_owned = False
        self._indexes_owned = False
        copy._tid_pos = self._tid_pos
        copy._version = self._version
        copy._zone_maps = dict(self._zone_maps)
        copy._range_indexes = dict(self._range_indexes)
        return copy
