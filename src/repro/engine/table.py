"""In-memory tables with stable tuple identifiers.

Each row receives a monotonically increasing tuple id (tid) when inserted.
Tids are the currency of lineage tracking (:mod:`repro.engine.lineage`) and
of log compaction, whose *mark* phase collects the tids to retain and whose
*delete* phase removes the rest.

Tables also carry a monotone **mutation version**: every change to the row
set bumps it. Derived structures built from a snapshot of the rows (hash
indexes, the tid→position map, and the executor's cached hash-join build
sides) are valid exactly as long as the version they were built at.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..errors import EngineError
from .schema import TableSchema, make_schema
from .types import SqlValue

Row = tuple  # tuple[SqlValue, ...], kept short for signature readability


class Table:
    """A bag of rows plus per-row tuple ids."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: list[Row] = []
        self._tids: list[int] = []
        self._next_tid = 0
        #: Lazily built hash indexes: column position → value → row indexes.
        #: Any mutation invalidates them; static tables keep them forever.
        self._indexes: dict[int, dict] = {}
        #: Lazy tid → row position map (see :meth:`tid_positions`).
        self._tid_pos: Optional[dict[int, int]] = None
        #: Monotone mutation counter; see the module docstring.
        self._version = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(
        cls, name: str, column_names: list[str], rows: Iterable[Sequence[SqlValue]]
    ) -> "Table":
        table = cls(make_schema(name, column_names))
        table.insert_many(rows)
        return table

    # -- basic accessors -----------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def version(self) -> int:
        """Monotone mutation version (bumped once per mutating call)."""
        return self._version

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> list[Row]:
        """The current rows (do not mutate the returned list)."""
        return self._rows

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Yield ``(tid, row)`` pairs in insertion order."""
        return zip(self._tids, self._rows)

    def tids(self) -> list[int]:
        return self._tids

    def tid_positions(self) -> dict:
        """The lazy tid → row-position map (rebuilt after any mutation).

        Shared by :meth:`row_for_tid` and the log store's insert phase,
        which resolves the marked tids of a compaction pass in one build
        instead of one linear scan each.
        """
        positions = self._tid_pos
        if positions is None:
            positions = {tid: pos for pos, tid in enumerate(self._tids)}
            self._tid_pos = positions
        return positions

    def row_for_tid(self, tid: int) -> Row:
        """Fetch a row by tuple id through the lazy tid→position map."""
        try:
            return self._rows[self.tid_positions()[tid]]
        except KeyError:
            raise EngineError(
                f"table {self.name!r} has no tuple with tid {tid}"
            ) from None

    # -- hash indexes -----------------------------------------------------------

    def index_probe(self, column: int, value: SqlValue) -> list[tuple[int, Row]]:
        """``(tid, row)`` pairs where ``row[column] == value``.

        Builds a hash index on first use; mutations invalidate it. NULL is
        never indexed (SQL equality with NULL is unknown).
        """
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for position, row in enumerate(self._rows):
                key = row[column]
                if key is not None:
                    index.setdefault(key, []).append(position)
            self._indexes[column] = index
        if value is None:
            return []
        try:
            positions = index.get(value, ())
        except TypeError:  # unhashable probe value
            return []
        return [(self._tids[p], self._rows[p]) for p in positions]

    def _invalidate_indexes(self) -> None:
        self._version += 1
        self._tid_pos = None
        if self._indexes:
            self._indexes = {}

    # -- mutation --------------------------------------------------------------

    def insert(self, row: Sequence[SqlValue]) -> int:
        """Insert one row; returns its tid."""
        if len(row) != self.schema.arity:
            raise EngineError(
                f"arity mismatch inserting into {self.name!r}: "
                f"expected {self.schema.arity} values, got {len(row)}"
            )
        tid = self._next_tid
        self._next_tid += 1
        self._rows.append(tuple(row))
        self._tids.append(tid)
        self._invalidate_indexes()
        return tid

    def insert_many(self, rows: Iterable[Sequence[SqlValue]]) -> list[int]:
        """Bulk append: one arity pass, one version bump, one invalidation."""
        arity = self.schema.arity
        added: list[Row] = []
        for row in rows:
            if len(row) != arity:
                raise EngineError(
                    f"arity mismatch inserting into {self.name!r}: "
                    f"expected {arity} values, got {len(row)}"
                )
            added.append(tuple(row))
        if not added:
            return []
        first = self._next_tid
        tids = list(range(first, first + len(added)))
        self._next_tid = first + len(added)
        self._rows.extend(added)
        self._tids.extend(tids)
        self._invalidate_indexes()
        return tids

    def insert_with_tids(
        self, rows: Sequence[Sequence[SqlValue]], tids: Sequence[int]
    ) -> None:
        """Insert rows under caller-assigned tids (WAL replay).

        Recovery must reproduce the exact tids the original run allocated
        (compaction marks and lineage reference them), so the normal
        counter is bypassed and then advanced past the largest tid used.
        """
        if len(rows) != len(tids):
            raise EngineError(
                f"insert_with_tids into {self.name!r}: "
                f"{len(rows)} rows vs {len(tids)} tids"
            )
        for row, tid in zip(rows, tids):
            if len(row) != self.schema.arity:
                raise EngineError(
                    f"arity mismatch inserting into {self.name!r}: "
                    f"expected {self.schema.arity} values, got {len(row)}"
                )
            self._rows.append(tuple(row))
            self._tids.append(tid)
        if tids:
            self._next_tid = max(self._next_tid, max(tids) + 1)
        self._invalidate_indexes()

    @property
    def next_tid(self) -> int:
        """The tid the next insert will receive."""
        return self._next_tid

    def advance_tid(self, next_tid: int) -> None:
        """Move the tid counter forward to at least ``next_tid``.

        WAL replay uses this to account for tids consumed by increments
        that never reached disk (rejected queries, discarded relations):
        the rows are gone but the counter must not hand their ids out
        again.
        """
        self._next_tid = max(self._next_tid, next_tid)

    def delete_tids(self, doomed: set[int]) -> int:
        """Remove all rows whose tid is in ``doomed``; returns removal count."""
        if not doomed:
            return 0
        kept_rows: list[Row] = []
        kept_tids: list[int] = []
        removed = 0
        for tid, row in self.scan():
            if tid in doomed:
                removed += 1
            else:
                kept_rows.append(row)
                kept_tids.append(tid)
        self._rows = kept_rows
        self._tids = kept_tids
        self._invalidate_indexes()
        return removed

    def retain_tids(self, keep: set[int]) -> int:
        """Keep only rows whose tid is in ``keep``; returns removal count."""
        doomed = {tid for tid in self._tids if tid not in keep}
        return self.delete_tids(doomed)

    def clear(self) -> None:
        """Remove all rows (tids keep increasing; they are never reused)."""
        self._rows = []
        self._tids = []
        self._invalidate_indexes()

    def clone(self) -> "Table":
        """Deep-enough copy: rows are immutable tuples, so sharing is safe.

        Derived structures ride along: the hash indexes, tid map and
        version carry over, so per-shard clones of a static catalog don't
        re-pay index builds. Inner index dicts are built-then-assigned and
        never mutated in place, and mutation on either side *reassigns*
        its own containers, so sharing them is safe.
        """
        copy = Table(self.schema)
        copy._rows = list(self._rows)
        copy._tids = list(self._tids)
        copy._next_tid = self._next_tid
        copy._indexes = dict(self._indexes)
        copy._tid_pos = self._tid_pos
        copy._version = self._version
        return copy
