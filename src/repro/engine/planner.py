"""Translates a bound AST into a physical operator tree.

Planning decisions, in order:

1. FROM items are planned left-deep in syntactic order. WHERE conjuncts
   are classified by the set of FROM units they reference: single-unit
   conjuncts are pushed beneath the joins onto their unit — descending the
   left spine of LEFT JOIN units (σ_p(L) ⟕ R ≡ σ_p(L ⟕ R) when p reads
   only L) and promoting ``col = constant`` probes on base scans to
   :class:`IndexScanOp`; plain column-equality conjuncts linking a new
   unit to the accumulated prefix become hash-join keys; multi-unit
   conjuncts are attached directly above the first join that binds all
   their columns; only what's left lands in the top residual filter.
2. If the query groups or aggregates, a :class:`GroupOp` materializes
   ``key + aggregate`` rows and the select list / HAVING / ORDER BY are
   compiled against that layout (non-grouped column refs are rejected, as
   in standard SQL).
3. ``DISTINCT ON`` keys are evaluated on the pre-projection row, matching
   PostgreSQL, which is what the paper's witness queries (Lemma 4.2) rely
   on.

Alongside each compiled closure the planner emits batch *kernels* (see
:mod:`repro.engine.vector`) for filters, projections, and join/group key
extraction, and columnar forms (see :mod:`repro.engine.columnar`) —
selection kernels, projection/key slots, aggregate specs — wherever the
expression shapes allow; the row path never touches either. Filters that
sit directly on a base-table scan additionally carry a *prune spec*: the
``column <op> constant`` conjuncts with plan-time-evaluable constants,
against which the columnar scan consults the table's zone maps (and, for
a lone range conjunct, its sorted range index) to skip chunks outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import BindError
from ..sql import ast
from . import columnar
from .aggregates import make_accumulator_factory
from .columnar import FLIPPED_OPS, PRUNABLE_OPS
from .database import Database
from .expressions import (
    RowFn,
    compile_expr,
    compile_predicate,
    contains_aggregate,
    is_aggregate_call,
)
from .operators import (
    DistinctOnOp,
    DistinctOp,
    ExceptOp,
    FilterOp,
    GroupOp,
    HashJoinOp,
    IntersectOp,
    LimitOp,
    NestedLoopOp,
    Operator,
    OrderOp,
    ProjectOp,
    ScanOp,
    UnionOp,
    ValuesOp,
)
from . import vector


@dataclass
class Binding:
    """One FROM item's contribution to the concatenated row."""

    name: str
    columns: list[str]
    offset: int


class Layout:
    """Column resolution over a list of bindings."""

    def __init__(self, bindings: list[Binding]):
        self.bindings = bindings
        self._by_name = {binding.name: binding for binding in bindings}

    @property
    def width(self) -> int:
        return sum(len(binding.columns) for binding in self.bindings)

    def binding(self, name: str) -> Binding:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise BindError(f"unknown table or alias {name!r}") from None

    def has_binding(self, name: str) -> bool:
        return name.lower() in self._by_name

    def resolve_position(self, ref: ast.ColumnRef) -> int:
        """Absolute index of a column ref in the concatenated row."""
        if ref.table is not None:
            binding = self.binding(ref.table)
            if ref.name not in binding.columns:
                raise BindError(
                    f"table {binding.name!r} has no column {ref.name!r}"
                )
            if binding.columns.count(ref.name) > 1:
                raise BindError(
                    f"column {ref.name!r} of {binding.name!r} is ambiguous "
                    "(duplicate output name)"
                )
            return binding.offset + binding.columns.index(ref.name)
        matches = [
            binding
            for binding in self.bindings
            if ref.name in binding.columns
        ]
        if not matches:
            raise BindError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            names = ", ".join(binding.name for binding in matches)
            raise BindError(f"column {ref.name!r} is ambiguous (in {names})")
        binding = matches[0]
        return binding.offset + binding.columns.index(ref.name)

    def qualifier_of(self, ref: ast.ColumnRef) -> str:
        """Binding name a column ref resolves to (for normalization)."""
        if ref.table is not None:
            return self.binding(ref.table).name
        matches = [b for b in self.bindings if ref.name in b.columns]
        if len(matches) != 1:
            raise BindError(f"cannot uniquely resolve column {ref.name!r}")
        return matches[0].name

    def column_fn(self, ref: ast.ColumnRef) -> RowFn:
        index = self.resolve_position(ref)
        return lambda row: row[index]

    def source_resolver(self, base: int = 0) -> vector.SourceResolver:
        """A kernel-emission resolver: ref → ``row[i]`` source, or None.

        ``base`` rebases positions for operators that see a sub-span of
        the concatenated row (unit-level pushed filters).
        """

        def resolve(ref: ast.ColumnRef) -> Optional[str]:
            try:
                return f"row[{self.resolve_position(ref) - base}]"
            except BindError:
                return None

        return resolve

    def position_resolver(self, base: int = 0) -> columnar.PositionResolver:
        """Columnar-kernel resolver: ref → column position, or None."""

        def resolve(ref: ast.ColumnRef) -> Optional[int]:
            try:
                return self.resolve_position(ref) - base
            except BindError:
                return None

        return resolve

    def bindings_of(self, expr: ast.Expr) -> set[str]:
        """Binding names an expression's column refs resolve into."""
        names = set()
        for ref in ast.column_refs(expr):
            names.add(self.qualifier_of(ref))
        return names


@dataclass
class Plan:
    """An executable operator tree plus its output column names."""

    op: Operator
    columns: list[str]


def normalize_expr(expr: ast.Expr, layout: Layout) -> ast.Expr:
    """Fully qualify every column ref so syntactic equality is meaningful."""

    def qualify(node: ast.Node) -> Optional[ast.Node]:
        if isinstance(node, ast.ColumnRef) and node.table is None:
            return ast.ColumnRef(layout.qualifier_of(node), node.name)
        if isinstance(node, ast.ColumnRef) and node.table is not None:
            resolved = layout.qualifier_of(node)
            if resolved != node.table:
                return ast.ColumnRef(resolved, node.name)
        return None

    return ast.transform(expr, qualify)


class Planner:
    """Plans one query against a database catalog."""

    def __init__(self, database: Database):
        self.database = database

    # -- entry points --------------------------------------------------------

    def plan(self, query: ast.Query) -> Plan:
        if isinstance(query, ast.Select):
            return self._plan_select(query)
        if isinstance(query, ast.SetOp):
            return self._plan_setop(query)
        raise BindError(f"cannot plan {type(query).__name__}")

    # -- set operations ---------------------------------------------------------

    def _plan_setop(self, query: ast.SetOp) -> Plan:
        left = self.plan(query.left)
        right = self.plan(query.right)
        if len(left.columns) != len(right.columns):
            raise BindError(
                f"{query.op.upper()} inputs have different arity: "
                f"{len(left.columns)} vs {len(right.columns)}"
            )
        if query.op == "union":
            op: Operator = UnionOp(left.op, right.op, all_rows=query.all)
        elif query.op == "except":
            op = ExceptOp(left.op, right.op)
        elif query.op == "intersect":
            op = IntersectOp(left.op, right.op)
        else:
            raise BindError(f"unknown set operation {query.op!r}")
        return Plan(op, left.columns)

    # -- SELECT ---------------------------------------------------------------

    def _plan_select(self, select: ast.Select) -> Plan:
        layout, from_op, residual = self._plan_from(select)

        if residual is not None:
            from_op = self._make_filter(from_op, residual, layout)

        grouped = bool(select.group_by) or self._select_has_aggregates(select)
        if grouped:
            return self._plan_grouped(select, layout, from_op)
        return self._plan_plain(select, layout, from_op)

    @staticmethod
    def _select_has_aggregates(select: ast.Select) -> bool:
        exprs: list[ast.Expr] = [
            item.expr
            for item in select.items
            if not isinstance(item.expr, ast.Star)
        ]
        if select.having is not None:
            exprs.append(select.having)
        exprs.extend(order.expr for order in select.order_by)
        return any(contains_aggregate(expr) for expr in exprs)

    # -- FROM clause + joins ------------------------------------------------------

    def _plan_from(
        self, select: ast.Select
    ) -> tuple[Layout, Operator, Optional[ast.Expr]]:
        if not select.from_items:
            # SELECT without FROM: a single empty row.
            return Layout([]), ValuesOp([()]), select.where

        # A "unit" is one FROM item planned in isolation: a scan, a
        # subquery, or a whole (left-)join tree, carrying one or more
        # bindings. Units then join left-deep in FROM order.
        units: list[tuple[list[Binding], Operator]] = []
        offset = 0
        seen_names: set[str] = set()
        for item in select.from_items:
            bindings, op = self._plan_source_item(item, offset)
            for binding in bindings:
                if binding.name in seen_names:
                    raise BindError(
                        f"duplicate table alias {binding.name!r} in FROM"
                    )
                seen_names.add(binding.name)
                offset += len(binding.columns)
            units.append((bindings, op))

        layout = Layout(
            [binding for bindings, _ in units for binding in bindings]
        )
        conjuncts = list(ast.conjuncts(select.where))
        consumed: set[int] = set()

        # Classify conjuncts by the set of units they reference. A
        # single-unit conjunct is pushed into that unit (for join units,
        # down the left spine where its columns allow — never into the
        # right side of a LEFT JOIN, which would change NULL padding).
        unit_of_binding = {
            binding.name: unit_index
            for unit_index, (bindings, _) in enumerate(units)
            for binding in bindings
        }
        per_unit: dict[int, list[tuple[ast.Expr, list[int]]]] = {}
        for index, conjunct in enumerate(conjuncts):
            refs = layout.bindings_of(conjunct)
            if not refs or contains_aggregate(conjunct):
                continue
            owners = {unit_of_binding[name] for name in refs}
            if len(owners) == 1:
                positions = [
                    layout.resolve_position(ref)
                    for ref in ast.column_refs(conjunct)
                ]
                per_unit.setdefault(owners.pop(), []).append(
                    (conjunct, positions)
                )
                consumed.add(index)

        planned: list[tuple[list[Binding], Operator]] = []
        for unit_index, (bindings, op) in enumerate(units):
            items = per_unit.get(unit_index)
            if items:
                base = bindings[0].offset
                width = sum(len(binding.columns) for binding in bindings)
                op = self._attach_unit_filters(op, items, base, width, layout)
            planned.append((bindings, op))

        # Left-deep joins in FROM order, consuming equi-join conjuncts;
        # remaining multi-unit conjuncts attach right above the first join
        # that binds all their columns (accumulated rows are an offset
        # prefix, so global positions stay valid).
        first_bindings, acc_op = planned[0]
        acc_binding_names = {binding.name for binding in first_bindings}
        last = len(planned) - 1
        for unit_index, (bindings, op) in enumerate(planned[1:], start=1):
            unit_names = {binding.name for binding in bindings}
            local_layout = self._local_layout(bindings)
            left_keys: list[RowFn] = []
            right_keys: list[RowFn] = []
            left_positions: list[int] = []
            right_positions: list[int] = []
            for index, conjunct in enumerate(conjuncts):
                if index in consumed:
                    continue
                keys = self._equi_join_keys(
                    conjunct, layout, acc_binding_names, unit_names
                )
                if keys is None:
                    continue
                left_ref, right_ref = keys
                left_positions.append(layout.resolve_position(left_ref))
                right_positions.append(local_layout.resolve_position(right_ref))
                left_keys.append(layout.column_fn(left_ref))
                right_keys.append(local_layout.column_fn(right_ref))
                consumed.add(index)
            if left_keys:
                acc_op = HashJoinOp(
                    acc_op,
                    op,
                    left_keys,
                    right_keys,
                    left_tuple_fn=vector.tuple_fn(left_positions),
                    right_tuple_fn=vector.tuple_fn(right_positions),
                    left_positions=left_positions,
                    right_positions=right_positions,
                )
            else:
                acc_op = NestedLoopOp(acc_op, op)
            acc_binding_names |= unit_names
            if unit_index == last:
                break  # whatever is left is the top residual anyway
            ready: list[ast.Expr] = []
            for index, conjunct in enumerate(conjuncts):
                if index in consumed:
                    continue
                refs = layout.bindings_of(conjunct)
                if (
                    refs
                    and refs <= acc_binding_names
                    and not contains_aggregate(conjunct)
                ):
                    ready.append(conjunct)
                    consumed.add(index)
            if ready:
                acc_op = self._make_filter(
                    acc_op, ast.conjoin(ready), layout, pushed=len(ready)
                )

        residual = ast.conjoin(
            [c for i, c in enumerate(conjuncts) if i not in consumed]
        )
        return layout, acc_op, residual

    def _make_filter(
        self,
        child: Operator,
        expr: ast.Expr,
        layout: Layout,
        base: int = 0,
        pushed: int = 0,
        prune: Optional[tuple] = None,
    ) -> FilterOp:
        """A FilterOp with the closure predicate, a batch kernel, and a
        columnar selection kernel; ``prune`` optionally carries
        ``(table_name, spec, range_probe)`` for zone-map chunk skipping
        over a base-table scan."""

        def column_fn(ref: ast.ColumnRef) -> RowFn:
            index = layout.resolve_position(ref) - base
            return lambda row: row[index]

        predicate = compile_predicate(expr, column_fn)
        kernel = vector.filter_kernel(
            predicate, expr, layout.source_resolver(base)
        )
        selection = columnar.selection_kernel(
            expr, layout.position_resolver(base)
        )
        prune_table, prune_spec, range_probe, prune_complete = prune or (
            None,
            None,
            None,
            False,
        )
        filter_op = FilterOp(
            child,
            predicate,
            kernel=kernel,
            pushed=pushed,
            selection=selection,
            prune_table=prune_table,
            prune_spec=prune_spec,
            range_probe=range_probe,
            prune_complete=prune_complete,
        )
        # Canonical identity for cross-plan sharing: the fully qualified
        # predicate plus the child-relative position of every column it
        # reads pins the compiled closures' behavior exactly (see
        # :func:`repro.engine.dag.fingerprint`).
        try:
            origin = (
                normalize_expr(expr, layout),
                tuple(
                    layout.resolve_position(ref) - base
                    for ref in ast.column_refs(expr)
                ),
            )
            hash(origin)
        except (BindError, TypeError):
            pass
        else:
            filter_op.origin = origin
        return filter_op

    def _attach_unit_filters(
        self,
        op: Operator,
        items: list,
        base: int,
        width: int,
        layout: Layout,
    ) -> Operator:
        """Push WHERE conjuncts into one FROM unit.

        ``items`` is a list of ``(conjunct, global column positions)``
        pairs, every position inside ``[base, base + width)``. For left
        joins, conjuncts reading only the left span descend recursively
        (filtering L before L ⟕ R preserves NULL padding; filtering R
        before the join would not, so right-side conjuncts stop here,
        above the join). At a base-table leaf, ``col = constant`` probes
        promote the scan to an index probe.
        """
        from .operators import LeftJoinOp

        if isinstance(op, LeftJoinOp):
            left_end = base + (width - op.right_width)
            descend = [
                item for item in items if all(p < left_end for p in item[1])
            ]
            if descend:
                op.left = self._attach_unit_filters(
                    op.left, descend, base, left_end - base, layout
                )
                items = [
                    item
                    for item in items
                    if not all(p < left_end for p in item[1])
                ]
            if not items:
                return op

        local = [conjunct for conjunct, _ in items]
        prune: Optional[tuple] = None
        if isinstance(op, ScanOp):
            binding = next(
                (b for b in layout.bindings if b.offset == base), None
            )
            if binding is not None:
                index_scan, local = self._try_index_scan(op, binding, local)
                if index_scan is not None:
                    op = index_scan
                elif local:
                    prune = self._prune_plan(op, binding, local)
        if not local:
            return op
        return self._make_filter(
            op,
            ast.conjoin(local),
            layout,
            base=base,
            pushed=len(local),
            prune=prune,
        )

    def _plan_source_item(
        self, item: ast.FromItem, offset: int
    ) -> tuple[list[Binding], Operator]:
        """Plan one FROM item into (bindings with global offsets, operator)."""
        if isinstance(item, ast.TableRef):
            table = self.database.table(item.name)
            columns = list(table.schema.column_names)
            binding = Binding(item.binding_name().lower(), columns, offset)
            return [binding], ScanOp(item.name)
        if isinstance(item, ast.SubqueryRef):
            subplan = self.plan(item.query)
            binding = Binding(
                item.binding_name().lower(), subplan.columns, offset
            )
            return [binding], subplan.op
        if isinstance(item, ast.JoinRef):
            return self._plan_join(item, offset)
        raise BindError(f"unsupported FROM item {type(item).__name__}")

    def _plan_join(
        self, join: ast.JoinRef, offset: int
    ) -> tuple[list[Binding], Operator]:
        from .operators import LeftJoinOp

        if join.kind != "left":
            raise BindError(f"unsupported join kind {join.kind!r}")
        left_bindings, left_op = self._plan_source_item(join.left, offset)
        left_width = sum(len(b.columns) for b in left_bindings)
        right_bindings, right_op = self._plan_source_item(
            join.right, offset + left_width
        )
        right_width = sum(len(b.columns) for b in right_bindings)
        bindings = left_bindings + right_bindings
        predicate = compile_predicate(
            join.condition, self._local_layout(bindings).column_fn
        )
        return bindings, LeftJoinOp(left_op, right_op, predicate, right_width)

    @staticmethod
    def _local_layout(bindings: list[Binding]) -> Layout:
        """Rebase a unit's bindings to offset 0 (the unit's own rows)."""
        rebased = []
        position = 0
        for binding in bindings:
            rebased.append(Binding(binding.name, binding.columns, position))
            position += len(binding.columns)
        return Layout(rebased)

    @staticmethod
    def _try_index_scan(
        scan: ScanOp, binding: Binding, local: list[ast.Expr]
    ) -> tuple[Optional[Operator], list[ast.Expr]]:
        """Convert the first ``col = constant`` conjunct into an index probe.

        Returns ``(index_scan_or_None, leftover_conjuncts)``.
        """
        from .operators import IndexScanOp

        for index, conjunct in enumerate(local):
            if not (
                isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
            ):
                continue
            for column_side, value_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(column_side, ast.ColumnRef):
                    continue
                if column_side.name not in binding.columns:
                    continue
                if ast.column_refs(value_side):
                    continue  # not a constant expression
                value_fn = compile_expr(value_side, _no_columns)
                position = binding.columns.index(column_side.name)
                leftover = local[:index] + local[index + 1 :]
                return IndexScanOp(scan.table_name, position, value_fn), leftover
        return None, local

    @staticmethod
    def _prune_plan(
        scan: ScanOp, binding: Binding, local: list
    ) -> Optional[tuple]:
        """``(table_name, prune spec, range probe, complete)`` for a
        pushed filter sitting directly on a base-table scan.

        The spec keeps only ``column <op> constant`` conjuncts whose
        constant side evaluates at plan time — anything else (or a
        constant that raises) is simply left out, which forfeits pruning
        for that conjunct but never changes semantics: the filter still
        applies its full predicate to every scanned chunk. The range
        probe is set only when the *single* conjunct of the filter is a
        range comparison, so index-matched rows need no re-filtering.
        ``complete`` marks specs where *every* conjunct became a triple
        (the spec conjunction is the whole predicate), enabling the
        filter's inline prune kernel.
        """
        triples = []
        for conjunct in local:
            triple = Planner._prune_triple(conjunct, binding)
            if triple is not None:
                triples.append(triple)
        if not triples:
            return None
        range_probe = None
        if len(local) == 1 and triples[0][1] in ("<", "<=", ">", ">="):
            range_probe = triples[0]
        return scan.table_name, triples, range_probe, len(triples) == len(local)

    @staticmethod
    def _prune_triple(
        conjunct: ast.Expr, binding: Binding
    ) -> Optional[tuple]:
        """``(column position, op, constant)`` for a simple comparison."""
        if not (
            isinstance(conjunct, ast.BinaryOp) and conjunct.op in PRUNABLE_OPS
        ):
            return None
        for column_side, value_side, op in (
            (conjunct.left, conjunct.right, conjunct.op),
            (conjunct.right, conjunct.left, FLIPPED_OPS[conjunct.op]),
        ):
            if not isinstance(column_side, ast.ColumnRef):
                continue
            if (
                column_side.table is not None
                and column_side.table.lower() != binding.name
            ):
                continue
            if binding.columns.count(column_side.name) != 1:
                continue
            if ast.column_refs(value_side):
                continue  # not a constant expression
            try:
                const = compile_expr(value_side, _no_columns)(())
            except Exception:
                return None  # leave evaluation (and its error) to the kernel
            return binding.columns.index(column_side.name), op, const
        return None

    @staticmethod
    def _equi_join_keys(
        conjunct: ast.Expr,
        layout: Layout,
        accumulated: set[str],
        unit_names: set[str],
    ) -> Optional[tuple[ast.ColumnRef, ast.ColumnRef]]:
        """If ``conjunct`` is ``col = col`` linking accumulated ↔ the new
        unit, return the pair ordered (accumulated_side, unit_side)."""
        if not (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            return None
        left_binding = layout.qualifier_of(conjunct.left)
        right_binding = layout.qualifier_of(conjunct.right)
        if left_binding in accumulated and right_binding in unit_names:
            return conjunct.left, conjunct.right
        if right_binding in accumulated and left_binding in unit_names:
            return conjunct.right, conjunct.left
        return None

    # -- plain (non-grouped) tail ---------------------------------------------

    def _plan_plain(
        self, select: ast.Select, layout: Layout, child: Operator
    ) -> Plan:
        out_fns, out_names, out_sources, out_slots = self._output_exprs(
            select, layout, grouped=False
        )

        key_fn = layout.column_fn  # input-context resolver

        if select.order_by and not (select.distinct or select.distinct_on):
            order_fns, descending = self._order_keys_input_context(
                select, layout, out_names
            )
            child = OrderOp(child, order_fns, descending)

        if select.distinct_on:
            on_fns = [
                compile_expr(expr, key_fn) for expr in select.distinct_on
            ]
            op: Operator = DistinctOnOp(child, on_fns, out_fns)
        else:
            op = ProjectOp(
                child,
                out_fns,
                kernel=vector.project_kernel(out_fns, sources=out_sources),
                slots=out_slots,
            )
            if select.distinct:
                op = DistinctOp(op)

        op = self._order_and_limit_post(select, op, out_names)
        return Plan(op, out_names)

    def _order_keys_input_context(
        self, select: ast.Select, layout: Layout, out_names: list[str]
    ) -> tuple[list[RowFn], list[bool]]:
        """Compile ORDER BY keys over pre-projection rows; bare column refs
        that match a select alias order by that select expression."""
        alias_exprs = {
            item.alias: item.expr
            for item in select.items
            if item.alias is not None and not isinstance(item.expr, ast.Star)
        }
        fns: list[RowFn] = []
        descending: list[bool] = []
        for order in select.order_by:
            expr = order.expr
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name in alias_exprs
            ):
                expr = alias_exprs[expr.name]
            fns.append(compile_expr(expr, layout.column_fn))
            descending.append(order.descending)
        return fns, descending

    def _order_and_limit_post(
        self, select: ast.Select, op: Operator, out_names: list[str]
    ) -> Operator:
        """ORDER BY after DISTINCT (output columns only) and LIMIT."""
        if select.order_by and (select.distinct or select.distinct_on):
            fns: list[RowFn] = []
            descending: list[bool] = []
            for order in select.order_by:
                expr = order.expr
                if not (
                    isinstance(expr, ast.ColumnRef) and expr.table is None
                ):
                    raise BindError(
                        "ORDER BY with DISTINCT must reference output columns"
                    )
                if expr.name not in out_names:
                    raise BindError(
                        f"ORDER BY column {expr.name!r} is not in the output"
                    )
                index = out_names.index(expr.name)
                fns.append(lambda row, i=index: row[i])
                descending.append(order.descending)
            op = OrderOp(op, fns, descending)
        if select.limit is not None:
            op = LimitOp(op, select.limit)
        return op

    def _output_exprs(
        self, select: ast.Select, layout: Layout, grouped: bool
    ) -> tuple[
        list[RowFn], list[str], list[Optional[str]], Optional[list]
    ]:
        """Compile the select list (non-grouped path) and name the output.

        The third return is per-slot kernel source (``row[i]`` / emitted
        expression / None for closure-only slots), feeding the projection
        kernel; the fourth is the columnar slot list (None when any slot
        has no columnar form, sending the projection down its row-wise
        fallback).
        """
        fns: list[RowFn] = []
        names: list[str] = []
        sources: list[Optional[str]] = []
        slots: list = []
        emit_source = layout.source_resolver()
        resolve_position = layout.position_resolver()
        for position, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                if grouped:
                    raise BindError("'*' cannot be used with GROUP BY")
                bindings = (
                    [layout.binding(item.expr.table)]
                    if item.expr.table
                    else layout.bindings
                )
                for binding in bindings:
                    for column_index, column in enumerate(binding.columns):
                        index = binding.offset + column_index
                        fns.append(lambda row, i=index: row[i])
                        names.append(column)
                        sources.append(f"row[{index}]")
                        slots.append(("col", index))
                continue
            fns.append(compile_expr(item.expr, layout.column_fn))
            names.append(self._output_name(item, position))
            sources.append(vector.emit(item.expr, emit_source))
            slots.append(columnar.value_slot(item.expr, resolve_position))
        usable = None if any(slot is None for slot in slots) else slots
        return fns, names, sources, usable

    @staticmethod
    def _output_name(item: ast.SelectItem, position: int) -> str:
        if item.alias:
            return item.alias.lower()
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        if isinstance(item.expr, ast.FuncCall):
            return item.expr.name
        return f"col{position + 1}"

    # -- grouped tail --------------------------------------------------------

    def _plan_grouped(
        self, select: ast.Select, layout: Layout, child: Operator
    ) -> Plan:
        key_exprs = [normalize_expr(e, layout) for e in select.group_by]
        key_index = {expr: i for i, expr in enumerate(key_exprs)}
        key_fns = [compile_expr(e, layout.column_fn) for e in key_exprs]
        key_tuple = (
            vector.key_tuple_fn(key_fns, key_exprs, layout.source_resolver())
            if key_exprs
            else None
        )

        # Collect distinct aggregate calls across all post-agg expressions.
        agg_order: list[ast.FuncCall] = []
        agg_index: dict[ast.FuncCall, int] = {}

        def collect(expr: ast.Expr) -> None:
            for node in expr.walk():
                if is_aggregate_call(node):
                    normalized = normalize_expr(node, layout)
                    assert isinstance(normalized, ast.FuncCall)
                    if normalized not in agg_index:
                        agg_index[normalized] = len(agg_order)
                        agg_order.append(normalized)

        post_agg_exprs: list[ast.Expr] = [
            item.expr
            for item in select.items
            if not isinstance(item.expr, ast.Star)
        ]
        if select.having is not None:
            post_agg_exprs.append(select.having)
        post_agg_exprs.extend(order.expr for order in select.order_by)
        post_agg_exprs.extend(select.distinct_on)
        for expr in post_agg_exprs:
            collect(expr)

        def compile_agg_arg(expr: ast.Expr) -> RowFn:
            return compile_expr(expr, layout.column_fn)

        factories = [
            make_accumulator_factory(call, compile_agg_arg)
            for call in agg_order
        ]
        resolve_position = layout.position_resolver()
        key_slots: Optional[list] = [
            columnar.value_slot(e, resolve_position) for e in key_exprs
        ]
        if any(slot is None for slot in key_slots):
            key_slots = None
        agg_specs: Optional[list] = [
            columnar.agg_spec(call, resolve_position) for call in agg_order
        ]
        if any(spec is None for spec in agg_specs):
            agg_specs = None
        group_width = len(key_exprs)

        def resolve_special(expr: ast.Expr) -> Optional[RowFn]:
            """Group-context hook: key sub-expressions and aggregates become
            slot lookups into the (keys + aggregates) group row."""
            try:
                normalized = normalize_expr(expr, layout)
            except BindError:
                return None
            if normalized in key_index:
                index = key_index[normalized]
                return lambda row: row[index]
            if is_aggregate_call(expr):
                assert isinstance(normalized, ast.FuncCall)
                index = group_width + agg_index[normalized]
                return lambda row: row[index]
            return None

        def grouped_column(ref: ast.ColumnRef) -> RowFn:
            raise BindError(
                f"column {ref} must appear in GROUP BY or inside an aggregate"
            )

        def compile_grouped(expr: ast.Expr) -> RowFn:
            return compile_expr(expr, grouped_column, resolve_special)

        op: Operator = GroupOp(
            child,
            key_fns,
            factories,
            key_tuple_fn=key_tuple,
            key_slots=key_slots,
            agg_specs=agg_specs,
        )
        # Sharing identity: normalized keys and aggregates plus the input
        # positions they resolve to (positions disambiguate self-joins
        # where distinct aliases normalize to the same qualified names).
        try:
            origin = (
                tuple(key_exprs),
                tuple(agg_order),
                tuple(
                    layout.resolve_position(ref)
                    for expr in list(key_exprs) + list(agg_order)
                    for ref in ast.column_refs(expr)
                ),
            )
            hash(origin)
        except (BindError, TypeError):
            pass
        else:
            op.origin = origin
        if select.having is not None:
            having_fn = compile_grouped(select.having)
            having_op = FilterOp(op, lambda row: having_fn(row) is True)
            # The HAVING predicate is compiled against the group-row
            # layout, which the child GroupOp's fingerprint already pins;
            # the normalized expression alone completes the identity.
            try:
                origin = ("having", normalize_expr(select.having, layout))
                hash(origin)
            except (BindError, TypeError):
                pass
            else:
                having_op.origin = origin
            op = having_op

        fns: list[RowFn] = []
        names: list[str] = []
        for position, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                raise BindError("'*' cannot be used with GROUP BY")
            fns.append(compile_grouped(item.expr))
            names.append(self._output_name(item, position))

        if select.order_by and not (select.distinct or select.distinct_on):
            order_fns = [compile_grouped(o.expr) for o in select.order_by]
            descending = [o.descending for o in select.order_by]
            op = OrderOp(op, order_fns, descending)

        if select.distinct_on:
            on_fns = [compile_grouped(e) for e in select.distinct_on]
            op = DistinctOnOp(op, on_fns, fns)
        else:
            op = ProjectOp(op, fns)
            if select.distinct:
                op = DistinctOp(op)

        op = self._order_and_limit_post(select, op, names)
        return Plan(op, names)


def _no_columns(ref: ast.ColumnRef) -> RowFn:
    raise BindError(f"unexpected column reference {ref} in constant expression")


def _slots_needed(slots) -> Optional[frozenset]:
    """Union of input positions the slots read (None = unknown → keep all)."""
    if slots is None:
        return None
    out: set = set()
    for slot in slots:
        positions = columnar.slot_positions(slot)
        if positions is None:
            return None
        out.update(positions)
    return frozenset(out)


def narrow_plan(op: Operator, needed: Optional[frozenset] = None) -> None:
    """Annotate joins and filters with the output columns actually read.

    Walks the plan top-down carrying ``needed`` — the output column
    positions some ancestor reads, or ``None`` for "all of them".
    Operators whose columnar form provably reads fixed positions
    (projection slots, selection kernels, group keys and aggregate
    arguments) shrink the set on the way down; anything else resets it
    to ``None``. :class:`HashJoinOp` and :class:`FilterOp` record the
    set as ``out_needed`` and emit OMITTED placeholders for the rest, so
    a join under a two-column projection gathers two output columns
    instead of the full concatenated row.

    The annotation only affects the columnar discipline; the row and
    batch paths never consult it.
    """
    if isinstance(op, ProjectOp):
        narrow_plan(op.child, _slots_needed(op.slots))
        return
    if isinstance(op, FilterOp):
        op.out_needed = needed
        read = (
            columnar.slot_positions(("expr", op.selection))
            if op.selection is not None
            else None
        )
        if needed is None or read is None:
            narrow_plan(op.child, None)
        else:
            narrow_plan(op.child, needed | frozenset(read))
        return
    if isinstance(op, HashJoinOp):
        op.out_needed = needed
        narrow_plan(op.left, None)
        narrow_plan(op.right, None)
        return
    if isinstance(op, GroupOp):
        if op.key_slots is None or op.agg_specs is None:
            narrow_plan(op.child, None)
            return
        slots = list(op.key_slots) + [
            spec.arg_slot for spec in op.agg_specs if spec.arg_slot is not None
        ]
        narrow_plan(op.child, _slots_needed(slots))
        return
    if isinstance(op, LimitOp):
        narrow_plan(op.child, needed)
        return
    # Everything else (sorts, set ops, distinct, outer joins, scans)
    # either reads whole rows or has no children: reset to "all".
    for attr in ("child", "left", "right"):
        inner = getattr(op, attr, None)
        if isinstance(inner, Operator):
            narrow_plan(inner, None)


def plan_query(query: ast.Query, database: Database) -> Plan:
    """Convenience wrapper around :class:`Planner`, narrowing included."""
    plan = Planner(database).plan(query)
    narrow_plan(plan.op)
    return plan
