"""Batch (vectorized) execution support: kernel compilation.

The row engine evaluates compiled closures once per row, so a predicate
like ``a = 1 AND b < 5`` costs five Python calls per tuple before any real
work happens. For batch execution the planner compiles the same AST into
*kernels*: single functions over a whole chunk of rows, built by emitting
Python source (``_and(_cmp_eq(row[0], 1), _cmp_lt(row[1], 5))``) into
one list comprehension and ``eval``-ing it once per plan.

Semantics are bit-identical to the closure compiler by construction: the
emitted source calls the exact same helpers from
:mod:`repro.engine.types` (same NULL propagation, same type errors, same
non-short-circuiting ``AND``/``OR``), only the per-row closure dispatch is
gone. Any expression shape the emitter does not understand falls back to
the compiled closure, spliced into the kernel source as an opaque call —
so every plan vectorizes, just with less inlining.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..sql import ast
from .expressions import RowFn
from .types import (
    arithmetic,
    compare_eq,
    compare_ge,
    compare_gt,
    compare_le,
    compare_lt,
    compare_ne,
    like,
    negate,
    sql_and,
    sql_not,
    sql_or,
)

#: Rows exchanged per operator hop. Big enough to amortize per-batch
#: overhead, small enough to keep working sets cache-resident.
BATCH_SIZE = 1024

#: A kernel maps a chunk of rows to a chunk of rows/values.
BatchFn = Callable[[list], list]

#: Resolves a column ref to a Python source fragment (``row[3]``), or
#: ``None`` when the ref cannot be resolved positionally.
SourceResolver = Callable[[ast.ColumnRef], Optional[str]]

_HELPERS = {
    "_cmp_eq": compare_eq,
    "_cmp_ne": compare_ne,
    "_cmp_lt": compare_lt,
    "_cmp_le": compare_le,
    "_cmp_gt": compare_gt,
    "_cmp_ge": compare_ge,
    "_and": sql_and,
    "_or": sql_or,
    "_not": sql_not,
    "_arith": arithmetic,
    "_neg": negate,
    "_like": like,
}

#: Comparison operators map to per-op helper functions so the emitted
#: code skips ``compare``'s operator dispatch on every row.
_COMPARISONS = {
    "=": "_cmp_eq",
    "<>": "_cmp_ne",
    "<": "_cmp_lt",
    "<=": "_cmp_le",
    ">": "_cmp_gt",
    ">=": "_cmp_ge",
}
_ARITHMETIC = frozenset({"+", "-", "*", "/", "%", "||"})


def emit(expr: ast.Expr, resolve_column: SourceResolver) -> Optional[str]:
    """Emit ``expr`` as a Python source fragment over ``row``.

    Returns ``None`` when the expression (or any sub-expression) has no
    source form; callers then splice in the compiled closure instead.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        if value is None or isinstance(value, (bool, int, float, str)):
            return repr(value)
        return None

    if isinstance(expr, ast.ColumnRef):
        return resolve_column(expr)

    if isinstance(expr, ast.UnaryOp):
        operand = emit(expr.operand, resolve_column)
        if operand is None:
            return None
        if expr.op == "not":
            return f"_not({operand})"
        if expr.op == "-":
            return f"_neg({operand})"
        return None

    if isinstance(expr, ast.BinaryOp):
        left = emit(expr.left, resolve_column)
        right = emit(expr.right, resolve_column)
        if left is None or right is None:
            return None
        op = expr.op
        if op == "and":
            return f"_and({left}, {right})"
        if op == "or":
            return f"_or({left}, {right})"
        if op == "like":
            return f"_like({left}, {right})"
        if op in _COMPARISONS:
            return f"{_COMPARISONS[op]}({left}, {right})"
        if op in _ARITHMETIC:
            return f"_arith({op!r}, {left}, {right})"
        return None

    if isinstance(expr, ast.IsNull):
        operand = emit(expr.operand, resolve_column)
        if operand is None:
            return None
        test = "is not None" if expr.negated else "is None"
        return f"(({operand}) {test})"

    return None  # IN lists, CASE, function calls: closure fallback


def _compile(source: str, namespace: dict):
    return eval(compile(source, "<vector-kernel>", "eval"), namespace)


def filter_kernel(
    predicate: Callable[[tuple], bool],
    expr: Optional[ast.Expr] = None,
    resolve_column: Optional[SourceResolver] = None,
) -> BatchFn:
    """A rows→rows kernel keeping rows that satisfy the predicate.

    When ``expr`` emits, the test is inlined into the comprehension;
    otherwise the compiled ``predicate`` closure is called per row.
    """
    source = (
        emit(expr, resolve_column)
        if expr is not None and resolve_column is not None
        else None
    )
    namespace = dict(_HELPERS)
    if source is None:
        namespace["_pred"] = predicate
        test = "_pred(row)"
    else:
        # ``is_truthy`` is just ``value is True``; inline it.
        test = f"({source}) is True"
    return _compile(f"lambda rows: [row for row in rows if {test}]", namespace)


def project_kernel(
    fns: Sequence[RowFn],
    exprs: Optional[Sequence[Optional[ast.Expr]]] = None,
    resolve_column: Optional[SourceResolver] = None,
    sources: Optional[Sequence[Optional[str]]] = None,
) -> BatchFn:
    """A rows→rows kernel building output tuples.

    Each slot uses its emitted source when available and its compiled
    closure (``fns[i]``) otherwise; pre-emitted ``sources`` entries win
    over ``exprs``.
    """
    namespace = dict(_HELPERS)
    parts = []
    for index, fn in enumerate(fns):
        source = sources[index] if sources is not None else None
        if source is None and exprs is not None and resolve_column is not None:
            expr = exprs[index]
            if expr is not None:
                source = emit(expr, resolve_column)
        if source is None:
            name = f"_f{index}"
            namespace[name] = fn
            source = f"{name}(row)"
        parts.append(source)
    tuple_source = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
    if not parts:
        tuple_source = "()"
    return _compile(f"lambda rows: [{tuple_source} for row in rows]", namespace)


def tuple_fn(positions: Sequence[int]) -> RowFn:
    """``row → (row[i], …)`` in one call (hash-join/group key extraction)."""
    parts = ", ".join(f"row[{position}]" for position in positions)
    source = "(" + parts + ("," if len(positions) == 1 else "") + ")"
    if not positions:
        source = "()"
    return _compile(f"lambda row: {source}", {})


def key_tuple_fn(
    fns: Sequence[RowFn],
    exprs: Optional[Sequence[ast.Expr]] = None,
    resolve_column: Optional[SourceResolver] = None,
) -> RowFn:
    """``row → key tuple`` through emitted sources where possible."""
    namespace = dict(_HELPERS)
    parts = []
    for index, fn in enumerate(fns):
        source = (
            emit(exprs[index], resolve_column)
            if exprs is not None and resolve_column is not None
            else None
        )
        if source is None:
            name = f"_k{index}"
            namespace[name] = fn
            source = f"{name}(row)"
        parts.append(source)
    source = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
    if not parts:
        source = "()"
    return _compile(f"lambda row: {source}", namespace)


def join_probe_kernel(positions: Sequence[int]) -> Callable[[list, Callable], list]:
    """``(rows, buckets.get) → joined rows`` for a hash-join probe.

    The key tuple is inlined from column positions, so the whole probe of
    a batch is one comprehension with no per-row Python-level calls beyond
    the bucket lookup. Safe without a NULL check: build sides never admit
    keys containing NULL, so a NULL probe key simply misses.
    """
    parts = ", ".join(f"row[{position}]" for position in positions)
    key = "(" + parts + ("," if len(positions) == 1 else "") + ")"
    return _compile(
        "lambda rows, get, empty=(): "
        f"[row + right for row in rows for right in get({key}, empty)]",
        {},
    )


def chunked(rows: list, size: int = BATCH_SIZE):
    """Yield ``rows`` in chunks of at most ``size`` (skips empty input)."""
    for start in range(0, len(rows), size):
        yield rows[start : start + size]
