"""Columnar storage and execution primitives.

The third execution discipline (``engine="columnar"``) moves data between
operators as :class:`ColumnBatch` objects — one Python list per column —
instead of lists of row tuples. Three things make that faster than the
batch path:

- **No per-row tuple construction.** Scans hand out the table's own
  column lists (zero copy); projections of plain columns are list
  reference picks; only the final result materializes tuples, in one
  C-level ``zip``.
- **Kernels over columns.** Filters compile to one selection
  comprehension over ``enumerate``/``zip`` of just the referenced
  columns; join probes are ``map(buckets.get, key_column)``; group-by
  reduces gathered value lists with C built-ins where value semantics
  allow.
- **Chunk skipping.** Tables keep per-chunk *zone maps* (min/max/null
  count per :data:`CHUNK_SIZE` rows) and sorted range indexes, so a
  pushed-down conjunct like ``ts > ?`` skips whole chunks instead of
  filtering every row (see :class:`ZoneEntry` and :func:`chunk_can_skip`).

Semantics are bit-identical to the row engine by construction: emitted
kernels call the same helpers from :mod:`repro.engine.types`, and the
aggregate reducers replicate the exact accumulation order (and error
text) of :mod:`repro.engine.aggregates`. Zone-map pruning is only applied
where the pruning decision provably matches the comparison helpers'
family rules — cross-family *ordering* comparisons raise, so those chunks
are always scanned to let the error surface.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..sql import ast
from . import vector

#: Rows per zone-map chunk. Matches the batch size so the two disciplines
#: amortize per-chunk overhead identically.
CHUNK_SIZE = 1024

#: Minimum table size before a filter consults a sorted range index
#: (building one is O(n log n); below this a zone-mapped scan wins).
RANGE_INDEX_MIN_ROWS = 1024

#: Comparison operators zone maps understand.
PRUNABLE_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})

#: A selection kernel: ``(columns, length) -> kept positions``.
SelectionKernel = Callable[[List[list], int], Sequence[int]]
#: A value kernel: ``(columns, length) -> list of computed values``.
ValueKernel = Callable[[List[list], int], list]
#: A projection/key slot: ``("col", position)`` for a plain column pick
#: (zero copy) or ``("expr", kernel)`` for a computed column.
Slot = Tuple[str, object]

#: Resolves a column ref to its absolute position in the operator's
#: input row, or ``None`` when it cannot be resolved positionally.
PositionResolver = Callable[[ast.ColumnRef], Optional[int]]


# ---------------------------------------------------------------------------
# Column vectors: the typed per-column store behind Table
# ---------------------------------------------------------------------------

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


class ColumnVector:
    """One table column: a typed array when the values allow, a list
    otherwise, plus a null bitmap.

    Storage modes (``kind``):

    - ``"i64"`` — every non-null value is exactly ``int`` (never ``bool``)
      within 64-bit range; backed by ``array('q')`` with a ``bytearray``
      null bitmap.
    - ``"f64"`` — every non-null value is exactly ``float``; ``array('d')``
      plus bitmap.
    - ``"obj"`` — anything else (mixed families, strings, big ints);
      backed by a plain list holding ``None`` for NULL.

    A vector *promotes* from empty-``obj`` to a typed mode on its first
    bulk load and *demotes* to ``obj`` the moment a non-conforming value
    arrives — value identity is never coerced (``1`` never becomes
    ``1.0``), which is what keeps the engines bit-identical.

    ``values()`` returns the decoded Python-object view used by kernels;
    for ``obj`` mode it is the backing list itself, for typed modes a
    cached ``array.tolist()`` with NULLs patched in, maintained
    incrementally across appends.

    Clones share backing storage copy-on-write: both sides are marked
    shared and the first to mutate copies its arrays first.
    """

    __slots__ = ("kind", "_data", "_nulls", "_null_count", "_decoded", "_shared")

    def __init__(self) -> None:
        self.kind = "obj"
        self._data: list = []
        self._nulls: Optional[bytearray] = None
        self._null_count = 0
        self._decoded: Optional[list] = None
        self._shared = False

    # -- construction --------------------------------------------------------

    @classmethod
    def from_values(cls, values: Iterable) -> "ColumnVector":
        vec = cls()
        vec.extend(values)
        return vec

    # -- basic accessors -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, position: int):
        if self.kind == "obj":
            return self._data[position]
        if self._null_count and _bit_get(self._nulls, position):
            return None
        return self._data[position]

    @property
    def null_count(self) -> int:
        return self._null_count

    def is_clean_numeric(self) -> bool:
        """Typed numeric storage with no NULLs: aggregate fast paths apply."""
        return self._null_count == 0 and self.kind != "obj"

    def values(self) -> list:
        """The decoded column as a plain list (NULL as ``None``).

        Callers must not mutate the returned list: in ``obj`` mode it *is*
        the backing store, in typed modes it is a cache kept in sync with
        appends.
        """
        if self.kind == "obj":
            return self._data
        decoded = self._decoded
        if decoded is None:
            decoded = self._data.tolist()
            if self._null_count:
                nulls = self._nulls
                for position in _bit_positions(nulls, len(decoded)):
                    decoded[position] = None
            self._decoded = decoded
        return decoded

    def null_bitmap(self) -> bytes:
        """The null bitmap as bytes (bit ``i`` set ⇔ position ``i`` is NULL)."""
        size = (len(self._data) + 7) >> 3
        if self.kind != "obj":
            bitmap = self._nulls
            if bitmap is None:
                return bytes(size)
            return bytes(bitmap[:size]) + bytes(size - len(bitmap[:size]))
        bitmap = bytearray(size)
        for position, value in enumerate(self._data):
            if value is None:
                bitmap[position >> 3] |= 1 << (position & 7)
        return bytes(bitmap)

    # -- mutation ------------------------------------------------------------

    def _ensure_owned(self) -> None:
        if self._shared:
            if self.kind == "obj":
                self._data = list(self._data)
            else:
                self._data = array(self._data.typecode, self._data)
                if self._nulls is not None:
                    self._nulls = bytearray(self._nulls)
            self._decoded = None
            self._shared = False

    def _demote(self) -> None:
        """Fall back to object storage, preserving value identity."""
        decoded = self.values()
        if decoded is self._decoded:
            # values() returned the typed-mode cache; adopt it as the store.
            self._data = decoded
        else:
            self._data = list(decoded)
        self.kind = "obj"
        self._nulls = None
        self._decoded = None

    def append(self, value) -> None:
        self._ensure_owned()
        kind = self.kind
        if kind == "obj":
            self._data.append(value)
            if value is None:
                self._null_count += 1
            return
        if value is None:
            position = len(self._data)
            self._data.append(0 if kind == "i64" else 0.0)
            self._nulls = _bit_set(self._nulls, position)
            self._null_count += 1
            if self._decoded is not None:
                self._decoded.append(None)
            return
        if kind == "i64" and value.__class__ is int and _I64_MIN <= value <= _I64_MAX:
            self._data.append(value)
        elif kind == "f64" and value.__class__ is float:
            self._data.append(value)
        else:
            self._demote()
            self._data.append(value)
            return
        if self._decoded is not None:
            self._decoded.append(value)

    def extend(self, values: Iterable) -> None:
        values = list(values)
        if not values:
            return
        self._ensure_owned()
        if self.kind == "obj" and not self._data:
            self._adopt(values)
            return
        for value in values:
            self.append(value)

    def _adopt(self, values: list) -> None:
        """Bulk-load into an empty vector, sniffing the storage mode."""
        kinds = set(map(type, values))
        nullable = type(None) in kinds
        kinds.discard(type(None))
        if kinds == {int} and all(
            _I64_MIN <= v <= _I64_MAX for v in values if v is not None
        ):
            self.kind = "i64"
            typecode = "q"
        elif kinds == {float}:
            self.kind = "f64"
            typecode = "d"
        else:
            self.kind = "obj"
            self._data = values
            self._null_count = values.count(None) if nullable else 0
            return
        zero = 0 if self.kind == "i64" else 0.0
        if nullable:
            self._data = array(
                typecode, (zero if v is None else v for v in values)
            )
            bitmap = bytearray((len(values) + 7) >> 3)
            count = 0
            for position, value in enumerate(values):
                if value is None:
                    bitmap[position >> 3] |= 1 << (position & 7)
                    count += 1
            self._nulls = bitmap
            self._null_count = count
        else:
            self._data = array(typecode, values)
        self._decoded = values

    def take(self, positions: Sequence[int]) -> "ColumnVector":
        """A new vector holding the values at ``positions`` (in order)."""
        decoded = self.values()
        return ColumnVector.from_values([decoded[p] for p in positions])

    def clone(self) -> "ColumnVector":
        """Copy-on-write clone: storage is shared until either side mutates."""
        copy = ColumnVector()
        copy.kind = self.kind
        copy._data = self._data
        copy._nulls = self._nulls
        copy._null_count = self._null_count
        copy._decoded = self._decoded
        copy._shared = True
        self._shared = True
        return copy


def _bit_set(bitmap: Optional[bytearray], position: int) -> bytearray:
    if bitmap is None:
        bitmap = bytearray()
    index = position >> 3
    if index >= len(bitmap):
        bitmap.extend(b"\x00" * (index + 1 - len(bitmap)))
    bitmap[index] |= 1 << (position & 7)
    return bitmap


def _bit_get(bitmap: Optional[bytearray], position: int) -> int:
    if bitmap is None:
        return 0
    index = position >> 3
    if index >= len(bitmap):
        return 0
    return (bitmap[index] >> (position & 7)) & 1


def _bit_positions(bitmap: Optional[bytearray], length: int):
    if bitmap is None:
        return
    for index, byte in enumerate(bitmap):
        if not byte:
            continue
        base = index << 3
        for offset in range(8):
            if byte & (1 << offset):
                position = base + offset
                if position < length:
                    yield position


# ---------------------------------------------------------------------------
# Column batches: the unit of exchange between columnar operators
# ---------------------------------------------------------------------------


class _OmittedColumn(tuple):
    """Placeholder for a column the narrowing pass proved no ancestor
    reads (see ``planner.narrow_plan``). It stands in the column list so
    positions stay stable, but holds no values — indexing one raises
    tuple's ``IndexError``, keeping an incorrect narrowing loud instead
    of silently wrong.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<omitted column>"


#: The shared placeholder instance (always compared by identity).
OMITTED = _OmittedColumn()


class ColumnBatch:
    """A chunk of rows stored column-wise.

    ``columns`` holds one plain list per column; ``length`` is the row
    count (kept explicitly so zero-arity relations work). ``clean`` marks
    columns known to be NULL-free exact numerics (propagated from table
    vectors through pass-through operators), unlocking C-built-in
    aggregate reductions.

    Columns may alias a table's decoded caches — consumers must never
    mutate them in place.
    """

    __slots__ = ("columns", "length", "clean")

    def __init__(
        self,
        columns: List[list],
        length: int,
        clean: Optional[List[bool]] = None,
    ):
        self.columns = columns
        self.length = length
        self.clean = clean if clean is not None else [False] * len(columns)

    @property
    def width(self) -> int:
        return len(self.columns)

    @classmethod
    def from_rows(cls, rows: Sequence[tuple]) -> "ColumnBatch":
        """Transpose a non-empty list of row tuples."""
        return cls([list(col) for col in zip(*rows)], len(rows))

    def to_rows(self) -> list:
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    def take(
        self, positions: Sequence[int], needed: Optional[frozenset] = None
    ) -> "ColumnBatch":
        """Gather a subset of rows (cleanliness survives: subsets of
        clean columns are clean).

        ``needed`` — when the narrowing pass proved only some columns are
        read downstream — limits the gather to those columns; the rest
        become :data:`OMITTED` placeholders.
        """
        return ColumnBatch(
            [
                [col[p] for p in positions]
                if (needed is None or index in needed) and col is not OMITTED
                else OMITTED
                for index, col in enumerate(self.columns)
            ],
            len(positions),
            clean=list(self.clean),
        )


# ---------------------------------------------------------------------------
# Zone maps and pruning
# ---------------------------------------------------------------------------

#: Type → comparison family, mirroring ``types._comparable``: bool is its
#: own family, int/float share one, str is the third. Anything else (or a
#: mix) makes a chunk unprunable.
_FAMILY = {bool: "bool", int: "num", float: "num", str: "str"}


class ZoneEntry:
    """Per-chunk summary of one column: value family, min/max, null count.

    ``family`` is ``None`` when the chunk holds mixed families, non-SQL
    types, or a NaN — such chunks are never skipped. An all-NULL chunk has
    ``family == "null"`` and no bounds.
    """

    __slots__ = ("family", "lo", "hi", "null_count", "length")

    def __init__(self, family, lo, hi, null_count: int, length: int):
        self.family = family
        self.lo = lo
        self.hi = hi
        self.null_count = null_count
        self.length = length


def build_zone_entry(values: list) -> ZoneEntry:
    """Summarize one chunk of decoded values."""
    length = len(values)
    null_count = values.count(None)
    if null_count == length:
        return ZoneEntry("null", None, None, null_count, length)
    nonnull = [v for v in values if v is not None] if null_count else values
    kinds = set(map(type, nonnull))
    if kinds <= {int, float}:
        family = "num"
        if float in kinds and any(v != v for v in nonnull):
            return ZoneEntry(None, None, None, null_count, length)
    elif kinds == {str}:
        family = "str"
    elif kinds == {bool}:
        family = "bool"
    else:
        return ZoneEntry(None, None, None, null_count, length)
    return ZoneEntry(family, min(nonnull), max(nonnull), null_count, length)


def value_family(value) -> Optional[str]:
    """The comparison family of a constant (None for NULL/exotic types)."""
    if value is None:
        return None
    family = _FAMILY.get(type(value))
    if family == "num" and value != value:  # NaN never prunes
        return None
    return family


def chunk_can_skip(entry: ZoneEntry, op: str, const, const_family) -> bool:
    """True when no row of the chunk can satisfy ``column <op> const``.

    Mirrors the comparison helpers exactly:

    - NULL constants and all-NULL chunks never produce ``True`` → skip.
    - Cross-family ``=`` is always ``False`` → skip; cross-family ``<>``
      is always ``True`` → scan; cross-family *ordering* raises — the
      chunk is scanned so the error surfaces identically.
    - Within a family, min/max bounds decide.
    """
    if const is None:
        return True  # comparison with NULL is never True
    if entry.family == "null":
        return True  # every value NULL → every comparison unknown
    if entry.family is None or const_family is None:
        return False
    if entry.family != const_family:
        return op == "="  # cross-family equality is False; others scan
    lo, hi = entry.lo, entry.hi
    if op == "=":
        return const < lo or const > hi
    if op == "<>":
        return lo == hi == const
    if op == "<":
        return lo >= const
    if op == "<=":
        return lo > const
    if op == ">":
        return hi <= const
    if op == ">=":
        return hi < const
    return False


#: Operator mirror for flipping ``const <op> col`` into ``col <op'> const``.
FLIPPED_OPS = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


# ---------------------------------------------------------------------------
# Kernel emission over columns
# ---------------------------------------------------------------------------


def _emit_over_columns(
    expr: ast.Expr, resolve_position: PositionResolver
) -> Optional[Tuple[str, List[int]]]:
    """Emit ``expr`` as a source fragment over per-column loop variables.

    Returns ``(source, used_positions)`` where each referenced column
    position appears as the variable ``_v{position}``; ``None`` when any
    sub-expression has no source form (callers fall back to row-wise
    evaluation).
    """
    used: dict = {}

    def resolve(ref: ast.ColumnRef) -> Optional[str]:
        position = resolve_position(ref)
        if position is None:
            return None
        name = used.setdefault(position, f"_v{position}")
        return name

    source = vector.emit(expr, resolve)
    if source is None:
        return None
    return source, sorted(used)


def _loop_head(positions: List[int]) -> Tuple[str, str]:
    """The ``for``-clause pieces iterating the referenced columns.

    Returns ``(target, iterable)``: e.g. ``("_v3", "_cols[3]")`` for one
    column, ``("(_v1, _v4)", "zip(_cols[1], _cols[4])")`` for several.
    """
    if len(positions) == 1:
        p = positions[0]
        return f"_v{p}", f"_cols[{p}]"
    target = "(" + ", ".join(f"_v{p}" for p in positions) + ")"
    iterable = "zip(" + ", ".join(f"_cols[{p}]" for p in positions) + ")"
    return target, iterable


def _compile(source: str):
    namespace = dict(vector._HELPERS)
    return eval(compile(source, "<columnar-kernel>", "eval"), namespace)


def selection_kernel(
    expr: ast.Expr, resolve_position: PositionResolver
) -> Optional[SelectionKernel]:
    """Compile a predicate into ``(columns, n) -> kept positions``.

    The returned kernel carries a ``positions`` attribute — the input
    column positions it reads — consumed by the plan narrowing pass.
    """
    emitted = _emit_over_columns(expr, resolve_position)
    if emitted is None:
        return None
    source, positions = emitted
    if not positions:
        # Constant predicate: all rows or none. Guarded by n so empty
        # input never evaluates (matching per-row semantics, which never
        # run the predicate when there are no rows).
        kernel = _compile(
            f"lambda _cols, _n: (range(_n) if _n and ({source}) is True else ())"
        )
        kernel.positions = positions
        return kernel
    target, iterable = _loop_head(positions)
    kernel = _compile(
        f"lambda _cols, _n: [_i for _i, {target} in "
        f"enumerate({iterable}) if ({source}) is True]"
    )
    kernel.positions = positions
    return kernel


def value_kernel(
    expr: ast.Expr, resolve_position: PositionResolver
) -> Optional[ValueKernel]:
    """Compile an expression into ``(columns, n) -> list of values``.

    Like :func:`selection_kernel`, the kernel carries the ``positions``
    it reads for the plan narrowing pass.
    """
    emitted = _emit_over_columns(expr, resolve_position)
    if emitted is None:
        return None
    source, positions = emitted
    if not positions:
        # Evaluated once per row (matching per-row error semantics for
        # constant expressions that raise).
        kernel = _compile(f"lambda _cols, _n: [{source} for _ in range(_n)]")
        kernel.positions = positions
        return kernel
    target, iterable = _loop_head(positions)
    kernel = _compile(
        f"lambda _cols, _n: [{source} for {target} in {iterable}]"
    )
    kernel.positions = positions
    return kernel


def value_slot(
    expr: ast.Expr, resolve_position: PositionResolver
) -> Optional[Slot]:
    """A projection/key slot: plain refs become zero-copy column picks."""
    if isinstance(expr, ast.ColumnRef):
        position = resolve_position(expr)
        if position is not None:
            return ("col", position)
    kernel = value_kernel(expr, resolve_position)
    if kernel is None:
        return None
    return ("expr", kernel)


def slot_values(slot: Slot, columns: List[list], length: int) -> list:
    """Evaluate one slot over a batch."""
    if length == 0:
        return []  # zero-batch inputs may not even carry column lists
    tag, payload = slot
    if tag == "col":
        return columns[payload]
    return payload(columns, length)


def slot_is_clean(slot: Slot, clean: List[bool]) -> bool:
    tag, payload = slot
    return tag == "col" and bool(clean[payload])


def slot_positions(slot: Slot) -> Optional[List[int]]:
    """The input column positions a slot reads, or ``None`` when unknown
    (a kernel without position metadata — the narrowing pass then keeps
    every column)."""
    tag, payload = slot
    if tag == "col":
        return [payload]
    positions = getattr(payload, "positions", None)
    if positions is None:
        return None
    return list(positions)


# ---------------------------------------------------------------------------
# Aggregate reducers (exact replicas of repro.engine.aggregates semantics)
# ---------------------------------------------------------------------------


def reduce_count_star(values: list, clean: bool):
    return len(values)


def reduce_count(values: list, clean: bool):
    if clean:
        return len(values)
    return len(values) - values.count(None)


def reduce_sum(values: list, clean: bool):
    if clean:
        # Left-to-right addition from int 0: identical results to the
        # accumulator's pairwise addition for exact numerics (adding an
        # int 0 start is a no-op up to the sign of -0.0, which compares
        # equal).
        return sum(values) if values else None
    total = None
    for value in values:
        if value is None:
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"sum() over non-numeric value {value!r}")
        total = value if total is None else total + value
    return total


def reduce_avg(values: list, clean: bool):
    # The accumulator sums into a float starting at 0.0; replicate that
    # exact accumulation order (an integer sum then one division would
    # round differently for large ints).
    total = 0.0
    if clean:
        for value in values:
            total += value
        return total / len(values) if values else None
    count = 0
    for value in values:
        if value is None:
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"avg() over non-numeric value {value!r}")
        total += value
        count += 1
    if count == 0:
        return None
    return total / count


def _reduce_minmax(values: list, clean: bool, keep_smaller: bool):
    if clean:
        if not values:
            return None
        # min()/max() return the first extremal value, matching the
        # accumulator's replace-only-on-strict-improvement rule.
        return min(values) if keep_smaller else max(values)
    best = None
    for value in values:
        if value is None:
            continue
        if best is None:
            best = value
            continue
        try:
            replace = value < best if keep_smaller else value > best
        except TypeError:
            raise ExecutionError(
                f"min/max over incomparable values {value!r} and {best!r}"
            ) from None
        if replace:
            best = value
    return best


def reduce_min(values: list, clean: bool):
    return _reduce_minmax(values, clean, keep_smaller=True)


def reduce_max(values: list, clean: bool):
    return _reduce_minmax(values, clean, keep_smaller=False)


def distinct_values(values: list) -> list:
    """First occurrence of each distinct non-NULL value, in input order.

    The distinctness marker matches ``_DistinctWrapper`` exactly: bools
    are tagged with their type name so ``True`` and ``1`` stay distinct,
    while ``1`` and ``1.0`` (which compare equal) deduplicate.
    """
    seen: set = set()
    out: list = []
    add = seen.add
    append = out.append
    for value in values:
        if value is None:
            continue
        marker = (
            (type(value).__name__, value) if value.__class__ is bool else value
        )
        if marker in seen:
            continue
        add(marker)
        append(value)
    return out


_REDUCERS = {
    "count": reduce_count,
    "sum": reduce_sum,
    "avg": reduce_avg,
    "min": reduce_min,
    "max": reduce_max,
}


class AggSpec:
    """One aggregate call compiled for columnar evaluation."""

    __slots__ = ("arg_slot", "reducer", "distinct", "count_star")

    def __init__(
        self,
        arg_slot: Optional[Slot],
        reducer,
        distinct: bool,
        count_star: bool = False,
    ):
        self.arg_slot = arg_slot
        self.reducer = reducer
        self.distinct = distinct
        self.count_star = count_star

    def reduce(self, values: list, clean: bool):
        if self.distinct:
            values = distinct_values(values)
        return self.reducer(values, clean)


def agg_spec(
    call: ast.FuncCall, resolve_position: PositionResolver
) -> Optional[AggSpec]:
    """Compile one aggregate call, or ``None`` when unsupported."""
    name = call.name
    if name == "count" and (not call.args or isinstance(call.args[0], ast.Star)):
        if call.distinct:
            return None  # invalid SQL; let the factory raise its BindError
        return AggSpec(None, reduce_count_star, False, count_star=True)
    if len(call.args) != 1:
        return None
    reducer = _REDUCERS.get(name)
    if reducer is None:
        return None
    slot = value_slot(call.args[0], resolve_position)
    if slot is None:
        return None
    return AggSpec(slot, reducer, bool(call.distinct))
