"""Command-line interface: ``python -m repro``.

Subcommands:

- ``check`` — load CSV tables and ``.sql`` policy files, then check one
  query (or a file of queries) and report each decision;
- ``shell`` — the same setup, interactively: type SQL, see decisions,
  ``:explain`` the last rejection, ``:log`` to inspect the usage log;
- ``demo`` — a self-contained tour on the synthetic MIMIC-II database
  with the paper's six policies;
- ``explain`` — show the physical plan the engine would run for a
  query; ``--analyze`` executes it and annotates every operator with
  observed rows and time;
- ``serve`` — the sharded HTTP enforcement gateway (``--data-dir``
  makes every decision durable via a write-ahead log);
- ``incremental`` — report which policies the incremental classifier
  accepts for running-aggregate maintenance, and why the rest fall
  back to full evaluation; ``--explain NAME`` focuses one policy;
- ``recover`` — offline inspection/repair of a durability directory:
  replays each shard's WAL and reports what survived.

CSV files load as tables named after the file (header row = column
names; values are parsed as int → float → string, empty = NULL). Policy
files contain one policy query each, named after the file.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core import Enforcer, EnforcerOptions, Policy, explain_decision
from .deprecation import warn_deprecated
from .engine import ENGINES, Database, SqlValue
from .errors import ReproError
from .log import SimulatedClock


def _parse_value(text: str) -> SqlValue:
    if text == "":
        return None
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    return text


def load_csv_table(database: Database, path: Path) -> str:
    """Load one CSV file as a table named after the file stem."""
    name = path.stem.lower()
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ReproError(f"{path}: empty CSV file") from None
        columns = [column.strip().lower() for column in header]
        rows = [tuple(_parse_value(cell) for cell in row) for row in reader]
    database.load_table(name, columns, rows)
    return name


def load_policy_file(path: Path) -> Policy:
    """Load one policy query from a .sql file, named after the file stem."""
    return Policy.from_sql(path.stem, path.read_text(encoding="utf-8"))


def build_enforcer(
    data_paths: Sequence[str],
    policy_paths: Sequence[str],
    engine: Optional[str] = None,
) -> Enforcer:
    database = Database()
    for spec in data_paths:
        load_csv_table(database, Path(spec))
    policies = [load_policy_file(Path(spec)) for spec in policy_paths]
    return Enforcer(
        database,
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(engine=engine),
    )


def _engine_from_args(args) -> Optional[str]:
    """The ``--engine`` selection, honoring deprecated ``--no-vectorized``."""
    engine = getattr(args, "engine", None)
    if getattr(args, "no_vectorized", False):
        warn_deprecated("--no-vectorized is deprecated; use --engine row")
        if engine is None:
            engine = "row"
    return engine


def _print_decision(decision, out) -> None:
    if decision.allowed:
        result = decision.result
        print(f"ALLOWED ({len(result.rows) if result else 0} rows)", file=out)
        if result and result.rows:
            print("  " + " | ".join(result.columns), file=out)
            for row in result.rows[:25]:
                print("  " + " | ".join(str(v) for v in row), file=out)
            if len(result.rows) > 25:
                print(f"  ... {len(result.rows) - 25} more rows", file=out)
    else:
        print("REJECTED", file=out)
        for violation in decision.violations:
            print(f"  {violation}", file=out)


def cmd_check(args, out=sys.stdout) -> int:
    enforcer = build_enforcer(
        args.data, args.policy, engine=_engine_from_args(args)
    )
    if args.query:
        queries = [args.query]
    else:
        text = Path(args.query_file).read_text(encoding="utf-8")
        queries = [q.strip() for q in text.split(";") if q.strip()]
    exit_code = 0
    for sql in queries:
        print(f"> {sql}", file=out)
        try:
            decision = enforcer.submit(sql, uid=args.uid)
        except ReproError as error:
            print(f"ERROR: {error}", file=out)
            exit_code = 2
            continue
        _print_decision(decision, out)
        if not decision.allowed:
            exit_code = 1
            if args.explain:
                for explanation in explain_decision(enforcer, decision):
                    print(explanation.render(), file=out)
    return exit_code


def cmd_shell(args, out=sys.stdout, input_fn=input) -> int:
    enforcer = build_enforcer(args.data, args.policy)
    print(
        f"DataLawyer shell — {len(enforcer.policies)} policies over "
        f"{', '.join(n for n in enforcer.database.table_names())}",
        file=out,
    )
    print("Type SQL, or :explain / :log / :policies / :quit", file=out)
    last_rejection = None
    while True:
        try:
            line = input_fn("datalawyer> ")
        except (EOFError, KeyboardInterrupt):
            print("", file=out)
            return 0
        line = line.strip()
        if not line:
            continue
        if line in (":quit", ":q", "exit"):
            return 0
        if line == ":log":
            for name, size in enforcer.log_sizes().items():
                print(f"  {name}: {size} rows", file=out)
            continue
        if line == ":policies":
            for policy in enforcer.policies:
                print(f"  {policy.name}: {policy.message}", file=out)
            continue
        if line == ":explain":
            if last_rejection is None:
                print("  nothing to explain", file=out)
            else:
                for explanation in explain_decision(enforcer, last_rejection):
                    print(explanation.render(), file=out)
            continue
        try:
            decision = enforcer.submit(line, uid=args.uid)
        except ReproError as error:
            print(f"ERROR: {error}", file=out)
            continue
        _print_decision(decision, out)
        if not decision.allowed:
            last_rejection = decision


def cmd_demo(args, out=sys.stdout) -> int:
    from .workloads import (
        MimicConfig,
        PolicyParams,
        build_mimic_database,
        make_all_policies,
        make_workload,
    )

    config = MimicConfig(n_patients=args.patients)
    params = PolicyParams.for_config(config)
    enforcer = Enforcer(
        build_mimic_database(config),
        make_all_policies(params),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    workload = make_workload(config)
    print(
        f"Synthetic MIMIC-II ({config.n_patients} patients) under the "
        "paper's six policies (Table 2).",
        file=out,
    )
    for name, sql in workload.all().items():
        for uid in (0, 1):
            decision = enforcer.submit(sql, uid=uid)
            verdict = "ALLOWED" if decision.allowed else "REJECTED"
            overhead = decision.metrics.overhead_seconds * 1000
            query_ms = decision.metrics.query_seconds * 1000
            print(
                f"  {name} uid={uid}: {verdict}  "
                f"query {query_ms:6.2f} ms, enforcement {overhead:6.2f} ms",
                file=out,
            )
    blocked = enforcer.submit(
        "SELECT o.poe_id FROM poe_order o, d_patients p "
        "WHERE o.subject_id = p.subject_id",
        uid=1,
    )
    print("  restricted join for uid=1:", file=out)
    _print_decision(blocked, out)
    print(f"  usage log after compaction: {enforcer.log_sizes()}", file=out)
    return 0


def cmd_incremental(args, out=sys.stdout) -> int:
    """Show the incremental classifier's verdict for each policy."""
    if args.demo:
        from .workloads import (
            MimicConfig,
            PolicyParams,
            build_mimic_database,
            make_all_policies,
        )

        config = MimicConfig(n_patients=args.patients)
        enforcer = Enforcer(
            build_mimic_database(config),
            make_all_policies(PolicyParams.for_config(config)),
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(),
        )
    else:
        enforcer = build_enforcer(args.data, args.policy)
    report = enforcer.incremental_report()
    if args.explain:
        report = [
            entry
            for entry in report
            if args.explain == entry["runtime"]
            or args.explain in entry["policies"]
        ]
        if not report:
            print(f"no policy named {args.explain!r}", file=out)
            return 1
    for entry in report:
        verdict = (
            "incrementalizable" if entry["incrementalizable"] else "full-eval"
        )
        names = ", ".join(entry["policies"])
        print(f"{names}: {verdict} — {entry['reason']}", file=out)
        plan = entry.get("plan")
        if plan:
            print(f"  group by: {', '.join(plan['group_by']) or '(global)'}",
                  file=out)
            for aggregate in plan["aggregates"]:
                print(f"  aggregate: {aggregate}", file=out)
            for window in plan["windows"]:
                print(f"  window: {window}", file=out)
            print(f"  log relations: {', '.join(plan['log_relations'])}",
                  file=out)
    return 0


def cmd_explain(args, out=sys.stdout) -> int:
    """EXPLAIN / EXPLAIN ANALYZE one query, outside any policy check."""
    from .engine import Engine

    if args.demo:
        from .workloads import MimicConfig, build_mimic_database

        database = build_mimic_database(MimicConfig(n_patients=args.patients))
    else:
        database = Database()
        for spec in args.data:
            load_csv_table(database, Path(spec))
    engine = Engine(database, _engine_from_args(args))
    try:
        print(engine.explain(args.query, analyze=args.analyze), file=out)
    except ReproError as error:
        print(f"ERROR: {error}", file=out)
        return 2
    return 0


def build_server(args):
    """Construct (but do not start) the HTTP server for ``serve``.

    Split from :func:`cmd_serve` so tests can exercise the wiring —
    flags → :class:`~repro.service.ServiceConfig` → sharded service —
    without binding a real port and blocking on ``serve_forever``.
    """
    from .server import serve
    from .service import ServiceConfig

    if args.demo:
        from .workloads import (
            MarketplaceConfig,
            build_marketplace_database,
            sharded_contract,
            standard_contract,
        )

        config = MarketplaceConfig()
        # Sharded demos use the per-uid contract rewrite — unless the
        # global tier is on, which exists precisely to host the standard
        # contract's cross-user free-tier quota.
        contract = (
            sharded_contract(config)
            if args.shards > 1 and args.global_tier == "off"
            else standard_contract(config)
        )
        enforcer = Enforcer(
            build_marketplace_database(config),
            contract,
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(engine=_engine_from_args(args)),
        )
    else:
        enforcer = build_enforcer(
            args.data, args.policy, engine=_engine_from_args(args)
        )
    return serve(
        enforcer,
        host=args.host,
        port=args.port,
        config=ServiceConfig(
            shards=args.shards,
            queue_depth=args.queue_depth,
            workers=args.workers,
            workers_mode="process" if args.processes else "thread",
            data_dir=args.data_dir,
            wal_sync=not args.no_fsync,
            checkpoint_every=args.checkpoint_every,
            batch_size=args.batch_size,
            decision_cache=not args.no_decision_cache,
            incremental=not args.no_incremental,
            tracing=not args.no_tracing,
            slow_query_seconds=args.slow_query_ms / 1000.0,
            global_tier=args.global_tier,
            engine=_engine_from_args(args),
        ),
    )


def cmd_serve(args, out=sys.stdout) -> int:
    try:
        server = build_server(args)
    except ReproError as error:
        print(f"ERROR: {error}", file=out)
        return 2
    host, port = server.server_address[:2]
    service = server.service
    print(
        f"enforcement gateway on http://{host}:{port} — "
        f"{service.config.shards} shard(s) × {service.config.workers} "
        f"worker(s), queue depth {service.config.queue_depth}",
        file=out,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("draining...", file=out)
    finally:
        server.server_close()  # drains the shards
    return 0


def cmd_recover(args, out=sys.stdout) -> int:
    """Offline recovery: repair, replay, and report each shard directory."""
    from .storage import checkpoint as write_checkpoint
    from .storage import has_state, recover_enforcer

    root = Path(args.data_dir)

    def shard_key(path: Path) -> "tuple[int, str]":
        suffix = path.name.split("-", 1)[-1]
        return (int(suffix), path.name) if suffix.isdigit() else (-1, path.name)

    shard_dirs = sorted(
        (path for path in root.glob("shard-*") if path.is_dir()),
        key=shard_key,
    )
    if not shard_dirs and has_state(root):
        # A bare (non-sharded) durability directory.
        shard_dirs = [root]
    if not shard_dirs:
        print(f"no durable state under {root}", file=out)
        return 1

    failures = 0
    for shard_dir in shard_dirs:
        try:
            enforcer, wal, report = recover_enforcer(
                shard_dir, clock=SimulatedClock(default_step_ms=10)
            )
        except ReproError as error:
            print(f"{shard_dir.name}: FAILED — {error}", file=out)
            failures += 1
            continue
        print(f"{shard_dir.name}: {report.summary()}", file=out)
        sizes = ", ".join(
            f"{name}={size}" for name, size in enforcer.log_sizes().items()
        )
        print(
            f"  {len(enforcer.policies)} policies; log sizes: {sizes}",
            file=out,
        )
        if args.checkpoint:
            write_checkpoint(enforcer, shard_dir, wal)
            print("  checkpoint written; WAL truncated", file=out)
        wal.close()
    return 2 if failures else 0


def cmd_report(args, out=sys.stdout) -> int:
    """Bundle the benchmark result tables into one report."""
    results_dir = Path(args.results)
    if not results_dir.is_dir():
        print(
            f"no results at {results_dir} — run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=out,
        )
        return 1
    order = [
        "fig1_uid0", "fig1_uid1", "fig2a", "fig2b", "fig2c",
        "fig3_P1", "fig3_P5", "fig3_P6", "fig3_time_independent",
        "table4", "fig4", "fig5",
        "ablation_preemptive", "ablation_improved_partial",
        "ablation_deferred_compaction",
    ]
    names = [name for name in order if (results_dir / f"{name}.txt").exists()]
    names += sorted(
        path.stem
        for path in results_dir.glob("*.txt")
        if path.stem not in order
    )
    if not names:
        print(f"no result tables in {results_dir}", file=out)
        return 1
    sections = [
        (results_dir / f"{name}.txt").read_text(encoding="utf-8")
        for name in names
    ]
    report = (
        "DataLawyer reproduction — measured evaluation artifacts\n"
        "(see EXPERIMENTS.md for the paper-vs-measured discussion)\n"
        + "".join(sections)
    )
    print(report, file=out)
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
        print(f"written to {args.output}", file=out)
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DataLawyer: automatic enforcement of data use policies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check queries against policies")
    check.add_argument(
        "--data", action="append", default=[], help="CSV file to load as a table"
    )
    check.add_argument(
        "--policy", action="append", default=[], help=".sql policy file"
    )
    check.add_argument("--uid", type=int, default=1, help="submitting user id")
    check.add_argument("--explain", action="store_true", help="explain rejections")
    check.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="execution engine (default: columnar; results are identical "
        "under every engine)",
    )
    check.add_argument(
        "--no-vectorized", action="store_true",
        help="deprecated alias for --engine row",
    )
    group = check.add_mutually_exclusive_group(required=True)
    group.add_argument("--query", help="one SQL query")
    group.add_argument("--query-file", help="file of ';'-separated queries")
    check.set_defaults(func=cmd_check)

    shell = sub.add_parser("shell", help="interactive policy-checked SQL shell")
    shell.add_argument("--data", action="append", default=[])
    shell.add_argument("--policy", action="append", default=[])
    shell.add_argument("--uid", type=int, default=1)
    shell.set_defaults(func=cmd_shell)

    demo = sub.add_parser("demo", help="tour on the synthetic MIMIC-II setup")
    demo.add_argument("--patients", type=int, default=200)
    demo.set_defaults(func=cmd_demo)

    explain = sub.add_parser(
        "explain", help="show (or EXPLAIN ANALYZE) a query's physical plan"
    )
    explain.add_argument(
        "--data", action="append", default=[], help="CSV file to load as a table"
    )
    explain.add_argument(
        "--demo",
        action="store_true",
        help="explain against the synthetic MIMIC-II tables",
    )
    explain.add_argument("--patients", type=int, default=200)
    explain.add_argument("--query", required=True, help="the SQL query")
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the plan and annotate operators with rows and time",
    )
    explain.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="execution engine to plan/ANALYZE under (default: columnar)",
    )
    explain.add_argument(
        "--no-vectorized", action="store_true",
        help="deprecated alias for --engine row",
    )
    explain.set_defaults(func=cmd_explain)

    serve = sub.add_parser(
        "serve", help="run the sharded HTTP enforcement gateway"
    )
    serve.add_argument("--data", action="append", default=[])
    serve.add_argument("--policy", action="append", default=[])
    serve.add_argument(
        "--demo",
        action="store_true",
        help="serve the marketplace workload instead of --data/--policy",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--shards", type=int, default=1,
        help="enforcer shards (uid-hash routed; policies must be "
        "shard-local when > 1 unless --global-tier is enabled)",
    )
    serve.add_argument(
        "--global-tier", choices=("off", "async", "strict"), default="off",
        help="coordinator-side global policy tier for multi-shard "
        "deployments: 'async' admits monotone aggregate thresholds "
        "answered from streamed aggregator state (bounded staleness), "
        "'strict' additionally serializes the rest through two-phase "
        "reserve/commit admission (bit-identical to one shard)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=32,
        help="admission queue slots per shard (full queue → HTTP 429)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker threads per shard",
    )
    serve.add_argument(
        "--processes", action="store_true",
        help="back each shard with a worker process instead of threads "
        "(shared-nothing enforcers behind pipes; real multi-core "
        "scaling for CPU-bound policy checks)",
    )
    serve.add_argument(
        "--data-dir", default=None,
        help="durability directory: journal every decision to a per-shard "
        "write-ahead log and recover existing state on startup",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=256,
        help="snapshot + WAL truncation cadence in queries per shard "
        "(0 = only on drain and policy changes; needs --data-dir)",
    )
    serve.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on WAL appends (faster; an OS crash may lose "
        "the newest records)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=1,
        help="max queued queries a shard worker drains per wakeup; a "
        "batch shares one lock hold and one WAL group commit",
    )
    serve.add_argument(
        "--no-decision-cache", action="store_true",
        help="disable the per-shard cross-query decision cache",
    )
    serve.add_argument(
        "--no-incremental", action="store_true",
        help="disable incremental aggregate maintenance (every check "
        "re-evaluates its policies over the full usage log)",
    )
    serve.add_argument(
        "--no-tracing", action="store_true",
        help="disable per-query trace spans (trims the /metrics and "
        "explain=analyze surfaces)",
    )
    serve.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="execution engine for shard enforcers (default: columnar)",
    )
    serve.add_argument(
        "--no-vectorized", action="store_true",
        help="deprecated alias for --engine row",
    )
    serve.add_argument(
        "--slow-query-ms", type=float, default=0.0,
        help="log checks slower than this (with their span tree) and "
        "keep them on GET /slowlog; 0 disables",
    )
    serve.set_defaults(func=cmd_serve)

    incremental = sub.add_parser(
        "incremental",
        help="show which policies can be maintained incrementally",
    )
    incremental.add_argument(
        "--data", action="append", default=[], help="CSV file to load as a table"
    )
    incremental.add_argument(
        "--policy", action="append", default=[], help=".sql policy file"
    )
    incremental.add_argument(
        "--demo",
        action="store_true",
        help="classify the paper's six policies on the MIMIC-II setup",
    )
    incremental.add_argument("--patients", type=int, default=50)
    incremental.add_argument(
        "--explain", metavar="NAME",
        help="show only the named policy's classification (exit 1 if "
        "no policy has that name)",
    )
    incremental.set_defaults(func=cmd_incremental)

    recover = sub.add_parser(
        "recover",
        help="inspect and repair a durability directory offline",
    )
    recover.add_argument(
        "data_dir", help="the --data-dir a previous serve run journaled to"
    )
    recover.add_argument(
        "--checkpoint", action="store_true",
        help="also write a fresh checkpoint (truncating the WAL) so the "
        "next serve starts without replay",
    )
    recover.set_defaults(func=cmd_recover)

    report = sub.add_parser(
        "report", help="bundle benchmark result tables into one report"
    )
    report.add_argument(
        "--results", default="benchmarks/results", help="results directory"
    )
    report.add_argument("--output", help="also write the report to this file")
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
