"""Render an AST back to SQL text.

The output is valid input for :func:`repro.sql.parser.parse`; round-tripping
(parse → print → parse) yields an equal AST, a property exercised by the
test suite. Rewritten policies (witness queries, partial policies, unified
policies) are printed with this module when they are logged or displayed.
"""

from __future__ import annotations

from . import ast

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4,
    "<>": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "like": 4,
    "+": 5,
    "-": 5,
    "||": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def print_query(query: ast.Query) -> str:
    """Render any query node as SQL text."""
    if isinstance(query, ast.SetOp):
        keyword = query.op.upper() + (" ALL" if query.all else "")
        return f"({print_query(query.left)}) {keyword} ({print_query(query.right)})"
    if isinstance(query, ast.Select):
        return _print_select(query)
    raise TypeError(f"not a query node: {query!r}")


def print_expr(expr: ast.Expr) -> str:
    """Render an expression as SQL text."""
    return _expr(expr, parent_prec=0)


def _print_select(select: ast.Select) -> str:
    parts = ["SELECT"]
    if select.distinct_on:
        on_list = ", ".join(print_expr(e) for e in select.distinct_on)
        parts.append(f"DISTINCT ON ({on_list})")
    elif select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(item) for item in select.items))
    if select.from_items:
        parts.append("FROM " + ", ".join(_from_item(f) for f in select.from_items))
    if select.where is not None:
        parts.append("WHERE " + print_expr(select.where))
    if select.group_by:
        parts.append("GROUP BY " + ", ".join(print_expr(e) for e in select.group_by))
    if select.having is not None:
        parts.append("HAVING " + print_expr(select.having))
    if select.order_by:
        rendered = (
            print_expr(o.expr) + (" DESC" if o.descending else "")
            for o in select.order_by
        )
        parts.append("ORDER BY " + ", ".join(rendered))
    if select.limit is not None:
        parts.append(f"LIMIT {select.limit}")
    return " ".join(parts)


def _select_item(item: ast.SelectItem) -> str:
    text = print_expr(item.expr)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _from_item(item: ast.FromItem) -> str:
    if isinstance(item, ast.TableRef):
        return f"{item.name} {item.alias}" if item.alias else item.name
    if isinstance(item, ast.SubqueryRef):
        inner = print_query(item.query)
        alias = f" {item.alias}" if item.alias else ""
        return f"({inner}){alias}"
    if isinstance(item, ast.JoinRef):
        keyword = {"left": "LEFT JOIN"}[item.kind]
        return (
            f"{_from_item(item.left)} {keyword} {_from_item(item.right)} "
            f"ON {print_expr(item.condition)}"
        )
    raise TypeError(f"not a FROM item: {item!r}")


def _expr(expr: ast.Expr, parent_prec: int) -> str:
    if isinstance(expr, ast.Literal):
        return _literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return str(expr)
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.FuncCall):
        prefix = "DISTINCT " if expr.distinct else ""
        args = ", ".join(_expr(a, 0) for a in expr.args)
        return f"{expr.name}({prefix}{args})"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "not":
            # NOT sits between AND (2) and the predicates (4) in the grammar.
            text = f"NOT ({_expr(expr.operand, 0)})"
            return f"({text})" if parent_prec > 3 else text
        return f"-{_expr(expr.operand, 7)}"
    if isinstance(expr, ast.BinaryOp):
        prec = _PRECEDENCE[expr.op]
        op = {"and": "AND", "or": "OR", "like": "LIKE"}.get(expr.op, expr.op)
        # Comparisons (and LIKE) are non-associative in the grammar: both
        # operands must bind tighter; arithmetic/logic are left-associative.
        left_prec = prec + 1 if prec == 4 else prec
        text = f"{_expr(expr.left, left_prec)} {op} {_expr(expr.right, prec + 1)}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, ast.InList):
        items = ", ".join(_expr(i, 0) for i in expr.items)
        keyword = "NOT IN" if expr.negated else "IN"
        text = f"{_expr(expr.needle, 5)} {keyword} ({items})"
        return f"({text})" if parent_prec > 4 else text
    if isinstance(expr, ast.IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        text = f"{_expr(expr.operand, 5)} {keyword}"
        return f"({text})" if parent_prec > 4 else text
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        for cond, value in expr.whens:
            parts.append(f"WHEN {_expr(cond, 0)} THEN {_expr(value, 0)}")
        if expr.default is not None:
            parts.append(f"ELSE {_expr(expr.default, 0)}")
        parts.append("END")
        return " ".join(parts)
    raise TypeError(f"not an expression node: {expr!r}")


def _literal(value: ast.LiteralValue) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)
