"""Hand-written SQL lexer.

Turns SQL text into a list of :class:`~repro.sql.tokens.Token`. Supports:

- identifiers (``chartevents``, ``p1.irid``) and double-quoted identifiers,
- single-quoted string literals with ``''`` escaping,
- integer and decimal numeric literals (including scientific notation),
- the operator and punctuation inventory in :mod:`repro.sql.tokens`,
- ``--`` line comments and ``/* ... */`` block comments.

Keywords are recognized case-insensitively and normalized to upper case;
identifiers are normalized to lower case (SQL's usual folding), except
double-quoted identifiers which preserve case.
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenType

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")


class Lexer:
    """Single-pass lexer over an SQL string."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        """Lex the whole input, returning tokens terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._text):
                tokens.append(Token(TokenType.EOF, "", self._line, self._col))
                return tokens
            tokens.append(self._next_token())

    # -- internals --------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError(
                        "unterminated block comment", self._pos, self._line, self._col
                    )
            else:
                return

    def _next_token(self) -> Token:
        line, col = self._line, self._col
        char = self._peek()

        if char in _IDENT_START:
            return self._lex_word(line, col)
        if char in _DIGITS or (char == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, col)
        if char == "'":
            return self._lex_string(line, col)
        if char == '"':
            return self._lex_quoted_ident(line, col)

        for op in OPERATORS:
            if self._text.startswith(op, self._pos):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, line, col)
        if char in PUNCTUATION:
            self._advance()
            return Token(TokenType.PUNCT, char, line, col)

        raise LexError(f"unexpected character {char!r}", self._pos, line, col)

    def _lex_word(self, line: int, col: int) -> Token:
        start = self._pos
        while self._pos < len(self._text) and self._peek() in _IDENT_CONT:
            self._advance()
        word = self._text[start : self._pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, line, col)
        return Token(TokenType.IDENT, word.lower(), line, col)

    def _lex_number(self, line: int, col: int) -> Token:
        start = self._pos
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) in _DIGITS:
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1) in _DIGITS
            or (self._peek(1) in "+-" and self._peek(2) in _DIGITS)
        ):
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        return Token(TokenType.NUMBER, self._text[start : self._pos], line, col)

    def _lex_string(self, line: int, col: int) -> Token:
        # Opening quote.
        self._advance()
        parts: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise LexError("unterminated string literal", self._pos, line, col)
            char = self._peek()
            if char == "'":
                if self._peek(1) == "'":  # '' escapes a single quote
                    parts.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    return Token(TokenType.STRING, "".join(parts), line, col)
            else:
                parts.append(char)
                self._advance()

    def _lex_quoted_ident(self, line: int, col: int) -> Token:
        self._advance()
        parts: list[str] = []
        while True:
            if self._pos >= len(self._text):
                raise LexError("unterminated quoted identifier", self._pos, line, col)
            char = self._peek()
            if char == '"':
                if self._peek(1) == '"':
                    parts.append('"')
                    self._advance(2)
                else:
                    self._advance()
                    return Token(TokenType.IDENT, "".join(parts), line, col)
            else:
                parts.append(char)
                self._advance()


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: lex ``text`` into a token list."""
    return Lexer(text).tokenize()
