"""Abstract syntax tree for the supported SQL fragment.

All nodes are dataclasses deriving from :class:`Node`. The tree is treated
as immutable by convention: rewrites (witness generation, partial policies,
unification) use :meth:`Node.replace` / :func:`transform` to build modified
copies rather than mutating in place.

The fragment covers the policy language of the paper (§3.1) plus everything
the optimizations of §4 generate: ``SELECT [DISTINCT | DISTINCT ON (...)]``
with ``FROM`` items that are base tables or subqueries, conjunctive
``WHERE``/``HAVING``, ``GROUP BY``, ``ORDER BY``/``LIMIT`` and ``UNION``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Union


@dataclass(frozen=True)
class Node:
    """Base class for all AST nodes."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (recursing into lists/tuples of nodes)."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def replace(self, **changes) -> "Node":
        """Return a copy of this node with the given fields replaced."""
        return dataclasses.replace(self, **changes)


def transform(node: Node, fn: Callable[[Node], Optional[Node]]) -> Node:
    """Rebuild ``node`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives each node after its children have been transformed and
    may return a replacement node, or ``None`` to keep the node unchanged.
    """
    changes = {}
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, Node):
            new_value = transform(value, fn)
            if new_value is not value:
                changes[f.name] = new_value
        elif isinstance(value, (list, tuple)):
            new_items = []
            changed = False
            for item in value:
                if isinstance(item, Node):
                    new_item = transform(item, fn)
                    changed = changed or new_item is not item
                    new_items.append(new_item)
                else:
                    new_items.append(item)
            if changed:
                changes[f.name] = type(value)(new_items)
    if changes:
        node = node.replace(**changes)
    replacement = fn(node)
    return node if replacement is None else replacement


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr(Node):
    """Base class for expression nodes."""


#: Python value types an SQL literal can carry.
LiteralValue = Union[int, float, str, bool, None]


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean or NULL."""

    value: LiteralValue


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference such as ``p1.irid``."""

    table: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list or inside COUNT(*)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call; aggregates are distinguished by the planner."""

    name: str  # normalized lower-case, e.g. "count"
    args: tuple[Expr, ...]
    distinct: bool = False


@dataclass(frozen=True)
class UnaryOp(Expr):
    """``NOT x`` or ``-x``."""

    op: str  # "not" | "-"
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A binary operator application.

    ``op`` is normalized: comparisons ``= <> < <= > >=``, logic
    ``and or``, arithmetic ``+ - * / %``, string ``|| like``.
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class InList(Expr):
    """``x IN (v1, v2, ...)`` over a literal/expression list."""

    needle: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    """``x IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class CaseExpr(Expr):
    """``CASE WHEN c THEN v ... [ELSE d] END`` (searched form)."""

    whens: tuple[tuple[Expr, Expr], ...]
    default: Optional[Expr] = None

    def children(self) -> Iterator[Node]:
        for cond, value in self.whens:
            yield cond
            yield value
        if self.default is not None:
            yield self.default


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FromItem(Node):
    """Base class for items in a FROM clause."""

    def binding_name(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class TableRef(FromItem):
    """A base-table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(FromItem):
    """A parenthesized subquery in FROM; an alias is required by SQL but we
    tolerate its absence and synthesize one at bind time."""

    query: "Query"
    alias: Optional[str] = None

    def binding_name(self) -> str:
        return self.alias or "__subquery"


@dataclass(frozen=True)
class JoinRef(FromItem):
    """An explicit outer join in FROM (inner/cross joins are desugared to
    comma-style items at parse time; outer joins must keep their ON
    condition attached)."""

    left: FromItem
    right: FromItem
    kind: str  # currently only "left"
    condition: Expr

    def binding_name(self) -> str:
        # A join has no name of its own; its children carry the bindings.
        return f"__join_{self.left.binding_name()}_{self.right.binding_name()}"

    def leaf_items(self) -> list[FromItem]:
        """The non-join FROM items under this join, left to right."""
        leaves: list[FromItem] = []
        for side in (self.left, self.right):
            if isinstance(side, JoinRef):
                leaves.extend(side.leaf_items())
            else:
                leaves.append(side)
        return leaves


@dataclass(frozen=True)
class SelectItem(Node):
    """One entry in a select list: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem(Node):
    """One entry in ORDER BY."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Query(Node):
    """Base class for things that produce a relation (SELECT or set ops)."""


@dataclass(frozen=True)
class Select(Query):
    """A single SELECT block."""

    items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    distinct: bool = False
    distinct_on: tuple[Expr, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


@dataclass(frozen=True)
class SetOp(Query):
    """``UNION [ALL]`` (and friends) between two queries."""

    op: str  # "union" | "intersect" | "except"
    left: Query
    right: Query
    all: bool = False


# ---------------------------------------------------------------------------
# Convenience constructors used throughout the analysis layer
# ---------------------------------------------------------------------------


def conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Flatten a conjunction into its atomic conjuncts (empty for None)."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(exprs: list[Expr]) -> Optional[Expr]:
    """Combine expressions into one conjunction (None if the list is empty)."""
    result: Optional[Expr] = None
    for expr in exprs:
        result = expr if result is None else BinaryOp("and", result, expr)
    return result


def column_refs(node: Node) -> list[ColumnRef]:
    """All column references appearing anywhere under ``node``."""
    return [n for n in node.walk() if isinstance(n, ColumnRef)]


def tables_referenced(expr: Node) -> set[str]:
    """Qualifier names referenced by column refs under ``expr``."""
    return {ref.table for ref in column_refs(expr) if ref.table is not None}


def eq(left: Expr, right: Expr) -> BinaryOp:
    """Shorthand for an equality predicate."""
    return BinaryOp("=", left, right)


def col(table: Optional[str], name: str) -> ColumnRef:
    """Shorthand for a column reference."""
    return ColumnRef(table, name)


def lit(value: LiteralValue) -> Literal:
    """Shorthand for a literal."""
    return Literal(value)
