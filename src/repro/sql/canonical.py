"""Canonical text form of an SQL statement.

Two queries that differ only in whitespace, comments, or keyword/identifier
case lex to the same token stream (the lexer folds keywords to upper case
and unquoted identifiers to lower case). :func:`canonical_sql` re-renders
that stream as a single normalized string, which both the engine's plan
cache and the decision cache use as their key — so ``select * from t`` and
``SELECT  *  FROM t  -- hot`` share one slot.

The rendering is loss-free for equality purposes: string literals are
re-quoted with ``''`` escaping, and identifiers that survive only thanks
to double quotes (upper case or special characters) are re-quoted, so two
semantically different statements never collapse to the same canonical
form.
"""

from __future__ import annotations

from .lexer import tokenize
from .tokens import Token, TokenType

_BARE_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyz_")
_BARE_IDENT_CONT = _BARE_IDENT_START | frozenset("0123456789$")


def _render(token: Token) -> str:
    if token.type is TokenType.STRING:
        return "'" + token.value.replace("'", "''") + "'"
    if token.type is TokenType.IDENT:
        value = token.value
        bare = (
            bool(value)
            and value[0] in _BARE_IDENT_START
            and all(char in _BARE_IDENT_CONT for char in value[1:])
        )
        if bare:
            return value
        return '"' + value.replace('"', '""') + '"'
    return token.value


def canonical_sql(text: str) -> str:
    """Normalize ``text`` to a whitespace/case/comment-insensitive form.

    Raises :class:`~repro.errors.LexError` on unlexable input; callers
    that use the result as a cache key should fall back to the raw text
    (a query that cannot be lexed cannot be confused with one that can).
    """
    parts = []
    for token in tokenize(text):
        if token.type is TokenType.EOF:
            break
        parts.append(_render(token))
    return " ".join(parts)
