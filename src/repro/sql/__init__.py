"""SQL front end: lexer, parser, AST, and printer.

Typical use::

    from repro.sql import parse, print_query

    query = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
    print(print_query(query))
"""

from . import ast
from .canonical import canonical_sql
from .lexer import Lexer, tokenize
from .parser import Parser, parse, parse_expression, parse_select
from .printer import print_expr, print_query
from .tokens import Token, TokenType

__all__ = [
    "ast",
    "canonical_sql",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_expression",
    "parse_select",
    "print_expr",
    "print_query",
    "Token",
    "TokenType",
]
