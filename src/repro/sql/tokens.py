"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.sql.lexer.Lexer`."""

    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


# Reserved words. The lexer upper-cases identifiers that appear here and
# tags them as keywords; everything else stays an identifier (so column
# names such as "value" or "ts" are fine).
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "ON",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "LIKE",
        "BETWEEN",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "ALL",
        "JOIN",
        "INNER",
        "LEFT",
        "OUTER",
        "CROSS",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
    }
)

# Multi-character operators must be listed before their prefixes so the
# lexer can match greedily.
OPERATORS = (
    "<>",
    "!=",
    "<=",
    ">=",
    "||",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
)

PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    type: TokenType
    value: str
    line: int
    column: int

    def matches(self, ttype: TokenType, value: str | None = None) -> bool:
        """Return True if this token has the given type (and value, if set)."""
        if self.type is not ttype:
            return False
        return value is None or self.value == value

    def is_keyword(self, *names: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.value}({self.value!r})@{self.line}:{self.column}"
