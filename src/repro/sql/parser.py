"""Recursive-descent parser for the supported SQL fragment.

The entry point is :func:`parse` (or :func:`parse_select` when the caller
requires a plain ``SELECT``). Explicit ``JOIN ... ON`` syntax is desugared
at parse time into comma-style FROM items plus WHERE conjuncts, so the rest
of the system only ever deals with conjunctive select-project-join blocks —
the same normal form the paper's policy language uses.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenType

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    """Parses one statement from a token stream."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._index = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        got = token.value if token.type is not TokenType.EOF else "end of input"
        return ParseError(f"{message}, got {got!r}", token.line, token.column)

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _expect_keyword(self, name: str) -> Token:
        token = self._accept_keyword(name)
        if token is None:
            raise self._error(f"expected {name}")
        return token

    def _accept_punct(self, value: str) -> Optional[Token]:
        if self._peek().matches(TokenType.PUNCT, value):
            return self._advance()
        return None

    def _expect_punct(self, value: str) -> Token:
        token = self._accept_punct(value)
        if token is None:
            raise self._error(f"expected {value!r}")
        return token

    def _accept_operator(self, *values: str) -> Optional[Token]:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in values:
            return self._advance()
        return None

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return token.value
        raise self._error(f"expected {what}")

    # -- queries -----------------------------------------------------------

    def parse_statement(self) -> ast.Query:
        """Parse a full query followed by optional ';' and EOF."""
        query = self.parse_query()
        self._accept_punct(";")
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return query

    def parse_query(self) -> ast.Query:
        left = self._parse_query_term()
        while True:
            setop = self._accept_keyword("UNION", "INTERSECT", "EXCEPT")
            if setop is None:
                return left
            all_flag = self._accept_keyword("ALL") is not None
            right = self._parse_query_term()
            left = ast.SetOp(setop.value.lower(), left, right, all=all_flag)

    def _parse_query_term(self) -> ast.Query:
        if self._peek().matches(TokenType.PUNCT, "(") and self._peek(1).is_keyword(
            "SELECT"
        ):
            self._advance()
            query = self.parse_query()
            self._expect_punct(")")
            return query
        return self._parse_select()

    def _parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")

        distinct = False
        distinct_on: tuple[ast.Expr, ...] = ()
        if self._accept_keyword("DISTINCT"):
            distinct = True
            if self._accept_keyword("ON"):
                self._expect_punct("(")
                distinct_on = tuple(self._parse_expr_list())
                self._expect_punct(")")
                # "DISTINCT ON (x), y" — PostgreSQL writes a comma between
                # the ON list and the select list; tolerate it.
                self._accept_punct(",")

        items = tuple(self._parse_select_list())

        from_items: list[ast.FromItem] = []
        join_conditions: list[ast.Expr] = []
        if self._accept_keyword("FROM"):
            self._parse_from_list(from_items, join_conditions)

        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        where = ast.conjoin([c for c in [where] if c is not None] + join_conditions)

        group_by: tuple[ast.Expr, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._parse_expr_list())

        having = None
        if self._accept_keyword("HAVING"):
            having = self.parse_expression()

        order_by: tuple[ast.OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = tuple(self._parse_order_list())

        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise self._error("expected integer after LIMIT")
            self._advance()
            limit = int(token.value)

        return ast.Select(
            items=items,
            from_items=tuple(from_items),
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
            distinct_on=distinct_on,
            order_by=order_by,
            limit=limit,
        )

    def _parse_select_list(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        if self._accept_operator("*"):
            return ast.SelectItem(ast.Star())
        # t.* -- ident '.' '*'
        if (
            self._peek().type is TokenType.IDENT
            and self._peek(1).matches(TokenType.PUNCT, ".")
            and self._peek(2).matches(TokenType.OPERATOR, "*")
        ):
            table = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return ast.SelectItem(ast.Star(table))

        expr = self.parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias after AS")
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _parse_from_list(
        self, from_items: list[ast.FromItem], join_conditions: list[ast.Expr]
    ) -> None:
        from_items.append(self._parse_from_item())
        while True:
            if self._accept_punct(","):
                from_items.append(self._parse_from_item())
            elif self._peek().is_keyword("CROSS"):
                self._advance()
                self._expect_keyword("JOIN")
                from_items.append(self._parse_from_item())
            elif self._peek().is_keyword("INNER", "JOIN"):
                self._accept_keyword("INNER")
                self._expect_keyword("JOIN")
                from_items.append(self._parse_from_item())
                self._expect_keyword("ON")
                join_conditions.append(self.parse_expression())
            elif self._peek().is_keyword("LEFT"):
                self._advance()
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                right = self._parse_from_item()
                self._expect_keyword("ON")
                condition = self.parse_expression()
                from_items[-1] = ast.JoinRef(
                    from_items[-1], right, "left", condition
                )
            elif self._peek().is_keyword("OUTER"):
                raise self._error("only LEFT [OUTER] JOIN is supported")
            else:
                return

    def _parse_from_item(self) -> ast.FromItem:
        if self._accept_punct("("):
            query = self.parse_query()
            self._expect_punct(")")
            alias = self._parse_optional_alias()
            return ast.SubqueryRef(query, alias)
        name = self._expect_ident("table name")
        alias = self._parse_optional_alias()
        return ast.TableRef(name, alias)

    def _parse_optional_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_ident("alias after AS")
        if self._peek().type is TokenType.IDENT:
            return self._advance().value
        return None

    def _parse_order_list(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expr = self.parse_expression()
            descending = False
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
            items.append(ast.OrderItem(expr, descending))
            if not self._accept_punct(","):
                return items

    def _parse_expr_list(self) -> list[ast.Expr]:
        exprs = [self.parse_expression()]
        while self._accept_punct(","):
            exprs.append(self.parse_expression())
        return exprs

    # -- expressions ---------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        left = self._parse_additive()

        op_token = self._accept_operator(*_COMPARISONS)
        if op_token is not None:
            op = "<>" if op_token.value == "!=" else op_token.value
            return ast.BinaryOp(op, left, self._parse_additive())

        negated = False
        if self._peek().is_keyword("NOT") and self._peek(1).is_keyword(
            "IN", "LIKE", "BETWEEN"
        ):
            self._advance()
            negated = True

        if self._accept_keyword("IN"):
            self._expect_punct("(")
            items = tuple(self._parse_expr_list())
            self._expect_punct(")")
            return ast.InList(left, items, negated=negated)

        if self._accept_keyword("LIKE"):
            like = ast.BinaryOp("like", left, self._parse_additive())
            return ast.UnaryOp("not", like) if negated else like

        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            between = ast.BinaryOp(
                "and", ast.BinaryOp(">=", left, low), ast.BinaryOp("<=", left, high)
            )
            return ast.UnaryOp("not", between) if negated else between

        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated=negated)

        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            op_token = self._accept_operator("+", "-", "||")
            if op_token is None:
                return left
            left = ast.BinaryOp(op_token.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op_token = self._accept_operator("*", "/", "%")
            if op_token is None:
                return left
            left = ast.BinaryOp(op_token.value, left, self._parse_unary())

    def _parse_unary(self) -> ast.Expr:
        if self._accept_operator("-"):
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self._accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))

        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)

        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)

        if token.is_keyword("CASE"):
            return self._parse_case()

        if token.matches(TokenType.PUNCT, "("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr

        if token.type is TokenType.IDENT:
            return self._parse_ident_expr()

        raise self._error("expected an expression")

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("WHEN"):
            cond = self.parse_expression()
            self._expect_keyword("THEN")
            value = self.parse_expression()
            whens.append((cond, value))
        if not whens:
            raise self._error("CASE requires at least one WHEN branch")
        default = None
        if self._accept_keyword("ELSE"):
            default = self.parse_expression()
        self._expect_keyword("END")
        return ast.CaseExpr(tuple(whens), default)

    def _parse_ident_expr(self) -> ast.Expr:
        name = self._advance().value

        # Function call: ident '('
        if self._peek().matches(TokenType.PUNCT, "("):
            self._advance()
            distinct = self._accept_keyword("DISTINCT") is not None
            args: tuple[ast.Expr, ...]
            if self._accept_operator("*"):
                args = (ast.Star(),)
            elif self._peek().matches(TokenType.PUNCT, ")"):
                args = ()
            else:
                args = tuple(self._parse_expr_list())
            self._expect_punct(")")
            return ast.FuncCall(name, args, distinct=distinct)

        # Qualified column: ident '.' ident   (t.* is handled in select list)
        if self._peek().matches(TokenType.PUNCT, "."):
            self._advance()
            column = self._expect_ident("column name after '.'")
            return ast.ColumnRef(name, column)

        return ast.ColumnRef(None, name)


def parse(text: str) -> ast.Query:
    """Parse one SQL query (SELECT or UNION of SELECTs)."""
    return Parser(text).parse_statement()


def parse_select(text: str) -> ast.Select:
    """Parse a query that must be a single SELECT block."""
    query = parse(text)
    if not isinstance(query, ast.Select):
        raise ParseError("expected a single SELECT statement")
    return query


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone scalar/boolean expression."""
    parser = Parser(text)
    expr = parser.parse_expression()
    if parser._peek().type is not TokenType.EOF:  # noqa: SLF001 - same module
        raise parser._error("unexpected trailing input")  # noqa: SLF001
    return expr
