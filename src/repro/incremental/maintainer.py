"""The incremental maintainer: folds commits, answers checks.

One :class:`IncrementalMaintainer` sits between a
:class:`~repro.log.store.LogStore` and its enforcer. It owns

- a *scratch database* holding one tiny table per log relation (refilled
  with just the current delta before each delta-query execution) plus the
  policy's base tables attached **by reference** from the live catalog
  (so unified-constants tables and data edits are always current);
- one :class:`~repro.engine.Engine` over that scratch database — the
  engine's AST-level plan cache makes repeated delta planning free;
- one :class:`~repro.incremental.state.PolicyState` per routed policy.

Lifecycle:

- ``bootstrap()`` folds the persisted disk image (cold start, restore
  without a usable state file);
- ``on_commit(ts, inserted)`` folds exactly the rows a commit persisted —
  the same rows the WAL's commit record carries, so a live maintainer and
  one rebuilt by WAL replay reach identical state;
- ``on_discard()`` only counts: check-time deltas never touch state, so a
  rejected query needs no rollback;
- ``check(name)`` answers "would this policy's query return a row right
  now?" from state + the staged delta, or ``None`` to request full
  evaluation (cold, poisoned, or a runtime surprise — any exception
  poisons the policy rather than risking a wrong verdict).
"""

from __future__ import annotations

from typing import Optional

from ..engine import Database, Engine
from ..log import LogRegistry
from ..log.store import LogStore
from .classify import IncrementalPlan
from .state import PolicyState, StatePoisoned

#: Bumped whenever plan/state layout changes; checkpointed state with a
#: different format (or policy signatures) is discarded, not trusted.
STATE_FORMAT_VERSION = 1


class IncrementalStats:
    """Counters surfaced on ``/metrics`` and in ``Enforcer`` reports."""

    __slots__ = (
        "hits",
        "fallbacks",
        "fallback_reasons",
        "folds",
        "discards",
        "rebuilds",
        "restores",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.fallbacks = 0
        self.fallback_reasons: dict = {}
        self.folds = 0
        self.discards = 0
        self.rebuilds = 0
        self.restores = 0

    def fallback(self, reason: str) -> None:
        self.fallbacks += 1
        self.fallback_reasons[reason] = (
            self.fallback_reasons.get(reason, 0) + 1
        )

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "fallbacks": self.fallbacks,
            "fallback_reasons": dict(self.fallback_reasons),
            "folds": self.folds,
            "discards": self.discards,
            "rebuilds": self.rebuilds,
            "restores": self.restores,
        }


class IncrementalMaintainer:
    def __init__(
        self,
        database: Database,
        registry: LogRegistry,
        store: LogStore,
        plans: "dict[str, IncrementalPlan]",
        engine: "Optional[str]" = None,
        max_entries: int = 100_000,
    ) -> None:
        self.database = database
        self.registry = registry
        self.store = store
        self.plans = dict(plans)
        self.max_entries = max_entries
        self.stats = IncrementalStats()
        self.warm = False

        self._scratch = Database()
        needed_logs = {
            name for plan in plans.values() for name in plan.log_relations
        }
        for name in sorted(needed_logs):
            self._scratch.create_table(
                name, list(registry.get(name).full_columns)
            )
        for plan in plans.values():
            for name in plan.base_tables:
                if not self._scratch.has_table(name) and database.has_table(
                    name
                ):
                    self._scratch.attach(database.table(name))
        self.engine = Engine(self._scratch, engine)
        self.states = {
            name: PolicyState(plan, max_entries)
            for name, plan in plans.items()
        }

    # -- delta plumbing ----------------------------------------------------

    def _refill(self, plan: IncrementalPlan, rows_by_relation) -> None:
        for name in plan.log_relations:
            table = self._scratch.table(name)
            table.clear()
            table.insert_many(rows_by_relation.get(name, ()))

    def _delta_rows(self, plan: IncrementalPlan, rows_by_relation):
        self._refill(plan, rows_by_relation)
        return self.engine.execute(plan.delta).rows

    def _poison(self, name: str, reason: str) -> None:
        state = self.states.get(name)
        if state is not None and not state.poisoned:
            state.poisoned = reason

    # -- lifecycle ---------------------------------------------------------

    def bootstrap(self) -> None:
        """Fold the persisted disk image into fresh state.

        Reads only :attr:`LogStore._disk` (never staged rows), so it is
        safe mid-query; the staged delta is supplied at check time.
        """
        disk = {
            name: [row for _, row in entries]
            for name, entries in self.store._disk.items()  # noqa: SLF001
        }
        for name, state in self.states.items():
            plan = self.plans[name]
            try:
                state.fold_rows(self._delta_rows(plan, disk))
            except Exception as exc:  # noqa: BLE001
                self._poison(name, str(exc) or type(exc).__name__)
        self.warm = True
        self.stats.rebuilds += 1

    def on_commit(self, ts: int, inserted) -> None:
        """Fold the rows a commit just persisted (per relation)."""
        if not self.warm:
            return
        self.stats.folds += 1
        for name, state in self.states.items():
            if state.poisoned:
                continue
            plan = self.plans[name]
            if not any(inserted.get(rel) for rel in plan.log_relations):
                continue
            try:
                state.fold_rows(self._delta_rows(plan, inserted))
            except Exception as exc:  # noqa: BLE001
                self._poison(name, str(exc) or type(exc).__name__)

    def on_discard(self) -> None:
        """A rejected query's staged rows vanish; state never saw them."""
        self.stats.discards += 1

    # -- checks ------------------------------------------------------------

    def check(self, name: str) -> Optional[bool]:
        """True/False when state can answer, None to force full eval."""
        state = self.states.get(name)
        if state is None:
            self.stats.fallback("unplanned")
            return None
        if not self.warm:
            self.stats.fallback("cold")
            return None
        if state.poisoned:
            self.stats.fallback(f"poisoned: {state.poisoned}")
            return None
        now = self.store.current_time()
        if now is None:
            self.stats.fallback("no clock")
            return None
        plan = self.plans[name]
        try:
            staged = {
                rel: self._staged_rows(rel) for rel in plan.log_relations
            }
            delta = (
                self._delta_rows(plan, staged)
                if any(staged.values())
                else ()
            )
            verdict = state.check(int(now), delta)
        except Exception as exc:  # noqa: BLE001
            self._poison(name, str(exc) or type(exc).__name__)
            self.stats.fallback(f"poisoned: {exc}")
            return None
        self.stats.hits += 1
        return verdict

    def _staged_rows(self, name: str):
        return self.store.staged_row_values(name)

    # -- bookkeeping -------------------------------------------------------

    def state_entries(self) -> int:
        return sum(state.entries() for state in self.states.values())

    def report(self) -> dict:
        return {
            name: {
                "poisoned": state.poisoned,
                "entries": state.entries(),
                "groups": len(state.groups),
            }
            for name, state in self.states.items()
        }

    # -- durability --------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "format": STATE_FORMAT_VERSION,
            "max_entries": self.max_entries,
            "signatures": {
                name: plan.signature for name, plan in self.plans.items()
            },
            "states": {
                name: state.to_json() for name, state in self.states.items()
            },
        }

    def restore(self, payload: dict) -> bool:
        """Adopt checkpointed state; False means rebuild instead."""
        if not isinstance(payload, dict):
            return False
        if payload.get("format") != STATE_FORMAT_VERSION:
            return False
        if payload.get("max_entries") != self.max_entries:
            return False
        expected = {
            name: plan.signature for name, plan in self.plans.items()
        }
        if payload.get("signatures") != expected:
            return False
        stored = payload.get("states", {})
        if set(stored) != set(self.states):
            return False
        try:
            restored = {
                name: PolicyState.from_json(
                    self.plans[name], self.max_entries, stored[name]
                )
                for name in self.states
            }
        except (KeyError, TypeError, ValueError, StatePoisoned):
            return False
        self.states = restored
        self.warm = True
        self.stats.restores += 1
        return True
