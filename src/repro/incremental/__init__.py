"""Incremental policy-state maintenance (ROADMAP item 3).

Splits policies into *incrementalizable* monotone-aggregate shapes and
*full-eval* shapes, maintains per-group running aggregates on every log
commit, and answers incrementalizable checks in time independent of the
usage-log length — with decisions bit-identical to full evaluation.
"""

from .classify import (
    AggregateSpec,
    Classification,
    IncrementalPlan,
    WindowSpec,
    classify_policy,
    plan_summary,
)
from .maintainer import (
    STATE_FORMAT_VERSION,
    IncrementalMaintainer,
    IncrementalStats,
)
from .state import PolicyState, StatePoisoned

__all__ = [
    "AggregateSpec",
    "Classification",
    "IncrementalMaintainer",
    "IncrementalPlan",
    "IncrementalStats",
    "PolicyState",
    "STATE_FORMAT_VERSION",
    "StatePoisoned",
    "WindowSpec",
    "classify_policy",
    "plan_summary",
]
