"""Per-(group, policy) running aggregates.

Each incrementalizable policy maintains one :class:`PolicyState`: a map
from group key (e.g. ``(uid,)``, or ``()`` for a grand aggregate) to the
running value of every HAVING aggregate. Contributions are *folded* in
exactly once, when the log commit that persists them happens; windowed
contributions carry a precomputed **expiry bound** — the latest timestamp
``T`` at which they still satisfy every clock predicate — and are lazily
pruned from a min-heap ordered by that bound. A check at time ``T`` is
then: prune, add the staged delta's contributions, compare against the
thresholds.

Why no rollback is needed: folds happen only on :meth:`LogStore.commit`
(rows that are now permanently on disk), never on stage. A rejected
query's :meth:`discard_staged` has nothing to undo — its contributions
were only ever passed transiently to :meth:`PolicyState.check`.

Windowed ``sum`` shares the count machinery (fold the value instead of
1); ``min``/``max`` are maintained window-free only (a windowed extremum
cannot be maintained in O(1) — the classifier refuses that shape, and
the monotonicity gate additionally keeps ``sum``/``min`` thresholds out
of enforcement entirely).

Distinct counts are exact: a dict from value to its *loosest* expiry
bound. When the dict for one policy outgrows ``max_entries`` the policy
is *poisoned* — it permanently falls back to full evaluation (the "exact
fallback" of a bounded sketch), which is always correct, just slower.
"""

from __future__ import annotations

import heapq
from typing import Optional

from .classify import AggregateSpec, IncrementalPlan

#: Sentinel for a contribution that never expires (no window predicates).
FOREVER = None


class StatePoisoned(Exception):
    """Raised when a policy's state can no longer be trusted."""


def _expired(bound: int, strict_rank: int, now: int) -> bool:
    """Has a contribution with this expiry bound stopped qualifying?

    ``strict_rank`` is 0 for a strict window (``T < bound``: dead once
    ``now >= bound``) and 1 for non-strict (``T <= bound``).
    """
    return now >= bound if strict_rank == 0 else now > bound


def _compare(value, op: str, threshold) -> bool:
    if value is None or threshold is None:
        return False
    return value > threshold if op == ">" else value >= threshold


class _CountAgg:
    """COUNT / SUM: a total plus a heap of expiring quantities."""

    __slots__ = ("forever", "window_total", "heap")

    def __init__(self) -> None:
        self.forever = 0
        self.window_total = 0
        #: entries (bound, strict_rank, seq, quantity); seq breaks ties so
        #: quantities are never compared.
        self.heap: list = []

    def fold(self, quantity, bound, seq: int) -> None:
        if quantity is None:
            return
        if bound is FOREVER:
            self.forever += quantity
        else:
            heapq.heappush(self.heap, (bound[0], bound[1], seq, quantity))
            self.window_total += quantity

    def prune(self, now: int) -> None:
        while self.heap and _expired(self.heap[0][0], self.heap[0][1], now):
            _, _, _, quantity = heapq.heappop(self.heap)
            self.window_total -= quantity

    def upper(self):
        """A bound the value can only fall to as time passes."""
        return self.forever + self.window_total

    def value(self, now: int, extras):
        """Current value including staged ``(quantity, bound)`` extras."""
        self.prune(now)
        total = self.forever + self.window_total
        for quantity, bound in extras:
            if quantity is None:
                continue
            if bound is FOREVER or not _expired(bound[0], bound[1], now):
                total += quantity
        return total

    def entries(self) -> int:
        return len(self.heap) + (1 if self.forever else 0)

    def to_json(self) -> dict:
        return {
            "kind": "count",
            "forever": self.forever,
            "window_total": self.window_total,
            "heap": [list(entry) for entry in self.heap],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "_CountAgg":
        agg = cls()
        agg.forever = payload["forever"]
        agg.window_total = payload["window_total"]
        agg.heap = [tuple(entry) for entry in payload["heap"]]
        heapq.heapify(agg.heap)
        return agg


class _DistinctAgg:
    """COUNT(DISTINCT ...): value → loosest expiry bound, exact."""

    __slots__ = ("values", "heap")

    def __init__(self) -> None:
        #: value → FOREVER or (bound, strict_rank). The loosest bound wins.
        self.values: dict = {}
        #: lazy-deletion heap (bound, strict_rank, seq, value); an entry is
        #: stale when the dict has since recorded a looser bound.
        self.heap: list = []

    @staticmethod
    def _survives(current, candidate) -> bool:
        """Does the recorded bound outlive (or match) the candidate?"""
        if current is FOREVER:
            return True
        if candidate is FOREVER:
            return False
        return current >= candidate

    def fold(self, value, bound, seq: int) -> None:
        if value is None:
            return
        if value in self.values and self._survives(
            self.values[value], bound
        ):
            return
        self.values[value] = bound
        if bound is not FOREVER:
            heapq.heappush(self.heap, (bound[0], bound[1], seq, value))

    def prune(self, now: int) -> None:
        while self.heap and _expired(self.heap[0][0], self.heap[0][1], now):
            bound, strict_rank, _, value = heapq.heappop(self.heap)
            if self.values.get(value, FOREVER) == (bound, strict_rank):
                del self.values[value]

    def upper(self) -> int:
        return len(self.values)

    def value(self, now: int, extras) -> int:
        """Distinct count including staged ``(value, bound)`` extras."""
        self.prune(now)
        fresh: set = set()
        for value, bound in extras:
            if value is None or value in self.values or value in fresh:
                continue
            if bound is FOREVER or not _expired(bound[0], bound[1], now):
                fresh.add(value)
        return len(self.values) + len(fresh)

    def entries(self) -> int:
        return len(self.values)

    def to_json(self) -> dict:
        return {
            "kind": "distinct",
            "values": [
                [value, list(bound) if bound is not FOREVER else None]
                for value, bound in self.values.items()
            ],
            "heap": [list(entry) for entry in self.heap],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "_DistinctAgg":
        agg = cls()
        agg.values = {
            value: tuple(bound) if bound is not None else FOREVER
            for value, bound in payload["values"]
        }
        agg.heap = [tuple(entry) for entry in payload["heap"]]
        heapq.heapify(agg.heap)
        return agg


class _ExtremumAgg:
    """Window-free MIN / MAX: a single running scalar."""

    __slots__ = ("best", "is_max")

    def __init__(self, is_max: bool) -> None:
        self.best = None
        self.is_max = is_max

    def _better(self, a, b) -> bool:
        return a > b if self.is_max else a < b

    def fold(self, value, bound, seq: int) -> None:
        if value is None:
            return
        if bound is not FOREVER:
            raise StatePoisoned("windowed extremum reached the state store")
        if self.best is None or self._better(value, self.best):
            self.best = value

    def prune(self, now: int) -> None:
        pass

    def upper(self):
        return self.best

    def value(self, now: int, extras):
        best = self.best
        for value, _ in extras:
            if value is not None and (
                best is None or self._better(value, best)
            ):
                best = value
        return best

    def entries(self) -> int:
        return 0 if self.best is None else 1

    def to_json(self) -> dict:
        return {
            "kind": "max" if self.is_max else "min",
            "best": self.best,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "_ExtremumAgg":
        agg = cls(payload["kind"] == "max")
        agg.best = payload["best"]
        return agg


def _make_agg(kind: str):
    if kind in ("count", "sum"):
        return _CountAgg()
    if kind == "count_distinct":
        return _DistinctAgg()
    if kind in ("min", "max"):
        return _ExtremumAgg(kind == "max")
    raise StatePoisoned(f"unknown aggregate kind {kind!r}")


def _agg_from_json(payload: dict):
    kind = payload["kind"]
    if kind == "count":
        return _CountAgg.from_json(payload)
    if kind == "distinct":
        return _DistinctAgg.from_json(payload)
    if kind in ("min", "max"):
        return _ExtremumAgg.from_json(payload)
    raise StatePoisoned(f"unknown serialized aggregate {kind!r}")


class _GroupState:
    __slots__ = ("aggs", "thresholds")

    def __init__(self, specs) -> None:
        self.aggs = [_make_agg(spec.kind) for spec in specs]
        self.thresholds = [spec.threshold for spec in specs]


class PolicyState:
    """All incremental state for one runtime policy."""

    def __init__(self, plan: IncrementalPlan, max_entries: int) -> None:
        self.plan = plan
        self.max_entries = max_entries
        self.groups: dict = {}
        #: groups whose upper-bound values currently clear every threshold;
        #: a check must examine these even when the delta misses them.
        self.candidates: set = set()
        self.seq = 0
        self.poisoned: Optional[str] = None

    # -- folding -----------------------------------------------------------

    def fold_rows(self, rows) -> None:
        """Fold delta-query output rows (permanent contributions)."""
        if self.poisoned:
            return
        plan = self.plan
        touched = set()
        for row in rows:
            parsed = self._parse_row(row)
            if parsed is None:
                continue  # a NULL window bound: never qualifies
            key, contribs, thresholds = parsed
            group = self.groups.get(key)
            if group is None:
                group = self.groups[key] = _GroupState(plan.aggregates)
            for index, value in thresholds.items():
                known = group.thresholds[index]
                if known is None:
                    group.thresholds[index] = value
                elif known != value:
                    raise StatePoisoned(
                        f"group {key!r}: inconsistent threshold "
                        f"({known!r} vs {value!r})"
                    )
            self.seq += 1
            for agg, contrib in zip(group.aggs, contribs):
                agg.fold(contrib[0], contrib[1], self.seq)
            touched.add(key)
        for key in touched:
            group = self.groups[key]
            if all(
                _compare(agg.upper(), spec.op, threshold)
                for agg, spec, threshold in zip(
                    group.aggs, plan.aggregates, group.thresholds
                )
            ):
                self.candidates.add(key)
        if self.entries() > self.max_entries:
            raise StatePoisoned(
                f"state exceeds max_entries={self.max_entries}"
            )

    def _parse_row(self, row):
        """Split one delta row into (key, per-agg contribs, thresholds).

        Returns None when a window bound is NULL (the clock predicate can
        never hold for that contribution).
        """
        plan = self.plan
        width = plan.group_width
        key = tuple(row[:width])
        bound = FOREVER
        for offset, window in enumerate(plan.windows):
            value = row[width + len(plan.aggregates) + offset]
            if value is None:
                return None
            candidate = (value, 0 if window.strict else 1)
            if bound is FOREVER or candidate < bound:
                bound = candidate
        contribs = []
        for index, spec in enumerate(plan.aggregates):
            raw = row[width + index]
            if spec.kind == "count":
                contribs.append((0 if raw is None else 1, bound))
            else:
                contribs.append((raw, bound))
        thresholds = {
            index: row[offset] for index, offset in plan.threshold_offsets
        }
        return key, contribs, thresholds

    # -- checking ----------------------------------------------------------

    def check(self, now: int, delta_rows) -> bool:
        """Does any group clear every threshold at ``now`` given the staged
        delta? Mutates nothing but lazily prunes (a semantic no-op)."""
        if self.poisoned:
            raise StatePoisoned(self.poisoned)
        plan = self.plan
        extras: dict = {}
        extra_thresholds: dict = {}
        for row in delta_rows:
            parsed = self._parse_row(row)
            if parsed is None:
                continue
            key, contribs, thresholds = parsed
            per_agg = extras.setdefault(
                key, [[] for _ in plan.aggregates]
            )
            for index, contrib in enumerate(contribs):
                per_agg[index].append(contrib)
            if thresholds:
                extra_thresholds.setdefault(key, thresholds)

        for key in list(self.candidates):
            if key in extras:
                continue  # evaluated exactly below
            group = self.groups[key]
            if self._group_violates(group, now, None):
                return True
            self.candidates.discard(key)

        for key, per_agg in extras.items():
            group = self.groups.get(key)
            if group is None:
                group = _GroupState(plan.aggregates)
                for index, value in extra_thresholds.get(key, {}).items():
                    group.thresholds[index] = value
            if self._group_violates(group, now, per_agg):
                return True
            if key in self.candidates and not self._group_violates(
                self.groups[key], now, None
            ):
                self.candidates.discard(key)
        return False

    def _group_violates(self, group, now: int, per_agg) -> bool:
        for index, spec in enumerate(self.plan.aggregates):
            extras = per_agg[index] if per_agg is not None else ()
            value = group.aggs[index].value(now, extras)
            if not _compare(value, spec.op, group.thresholds[index]):
                return False
        return True

    # -- bookkeeping -------------------------------------------------------

    def entries(self) -> int:
        return len(self.groups) + sum(
            agg.entries()
            for group in self.groups.values()
            for agg in group.aggs
        )

    def to_json(self) -> dict:
        return {
            "poisoned": self.poisoned,
            "seq": self.seq,
            "candidates": [list(key) for key in self.candidates],
            "groups": [
                [
                    list(key),
                    [agg.to_json() for agg in group.aggs],
                    group.thresholds,
                ]
                for key, group in self.groups.items()
            ],
        }

    @classmethod
    def from_json(
        cls, plan: IncrementalPlan, max_entries: int, payload: dict
    ) -> "PolicyState":
        state = cls(plan, max_entries)
        state.poisoned = payload["poisoned"]
        state.seq = payload["seq"]
        state.candidates = {tuple(key) for key in payload["candidates"]}
        for key, aggs, thresholds in payload["groups"]:
            group = _GroupState(plan.aggregates)
            group.aggs = [_agg_from_json(item) for item in aggs]
            group.thresholds = list(thresholds)
            state.groups[tuple(key)] = group
        return state
