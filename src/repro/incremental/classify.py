"""Classify policies into *incrementalizable* vs *full-eval* shapes.

A policy check asks "does this SELECT return a row over disk ∪ increment?".
For most of the paper's aggregate policies (P1-style quotas, volume caps,
windowed rate limits) that question decomposes: the query is a monotone
aggregate grouped over the usage log, and every clock predicate is a
*shrinking window* (``c.ts < bound`` / ``c.ts <= bound``). Then each log
contribution can be folded into a per-group running aggregate exactly once,
with a precomputed expiry bound, and a check becomes "state + this query's
delta", independent of log length.

The classifier reuses the existing §4 analyses:

- :func:`~repro.analysis.monotonicity.is_monotone` — the verdict must only
  grow as the log grows. This is also what makes incremental evaluation
  *sound under compaction*: the maintained state counts every row ever
  persisted, full evaluation sees the possibly-compacted disk, and the
  logical (uncompacted) log bounds both from above. Witnesses are absolute
  (deleting an unmarked tuple never changes a future verdict), so the
  verdict agrees at both extremes — and a monotone verdict over a row set
  sandwiched between them must agree too.
- :func:`~repro.analysis.features.analyze_structure` — clock predicates in
  normalized ``c.ts op bound`` form, and the timestamp-equivalence classes
  of the log occurrences. All log occurrences must share *one* class, so
  a commit's delta joins only within itself (rows of different timestamps
  can never pair up) and the delta query needs no log history.
- Time-independent policies are refused: after the §4.1.1 rewrite their
  evaluation is already increment-local, so there is nothing to maintain.

Each decision is recorded as a :class:`Classification` with a
human-readable reason, surfaced via ``repro incremental --explain`` and
the ``classification`` field of ``/v1/policies``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.features import (
    PolicyStructure,
    aliases_of,
    analyze_structure,
)
from ..analysis.monotonicity import is_monotone
from ..engine import Database
from ..log import LogRegistry
from ..sql import ast, print_expr, print_query

#: Aggregates the state layer can maintain. ``sum``/``min`` are included
#: for completeness (the state store supports them directly), but the
#: monotonicity gate means only ``count``/``max`` shapes reach enforcement.
SUPPORTED_AGGREGATES = frozenset({"count", "sum", "min", "max"})

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class AggregateSpec:
    """One HAVING conjunct, oriented as ``AGG(arg) op threshold``."""

    #: "count" | "count_distinct" | "sum" | "min" | "max"
    kind: str
    arg: ast.Expr
    op: str  # ">" | ">="
    #: Static threshold value (from a literal); None when per-group.
    threshold: Optional[object]
    #: Group-determined threshold expression (a GROUP BY expr, e.g. a
    #: unified constants column); None when the threshold is a literal.
    threshold_expr: Optional[ast.Expr] = None


@dataclass(frozen=True)
class WindowSpec:
    """One shrinking clock predicate: qualifies while ``T op bound``."""

    strict: bool  # True for "<", False for "<="
    bound: ast.Expr  # clock-free; may reference row attributes


@dataclass(frozen=True)
class IncrementalPlan:
    """Everything the maintainer needs to fold and check one policy.

    The *delta query* projects, for every contributing row combination,
    the group key, the aggregate arguments, the window bounds, and any
    group-determined thresholds — with the clock FROM items and clock
    conjuncts removed, and no DISTINCT/GROUP BY (bag semantics, so row
    multiplicities match full evaluation exactly).
    """

    name: str
    delta: ast.Select
    group_width: int
    aggregates: "tuple[AggregateSpec, ...]"
    windows: "tuple[WindowSpec, ...]"
    #: (aggregate index, delta-column offset) for per-group thresholds.
    threshold_offsets: "tuple[tuple[int, int], ...]"
    log_relations: "tuple[str, ...]"
    base_tables: "tuple[str, ...]"
    #: Canonical text of the effective policy query; checkpointed state
    #: is only trusted when it matches.
    signature: str


@dataclass(frozen=True)
class Classification:
    """The inspectable verdict for one runtime policy."""

    name: str
    incrementalizable: bool
    reason: str
    plan: Optional[IncrementalPlan] = None

    def summary(self) -> dict:
        """JSON-friendly form for the CLI and ``/v1/policies``."""
        entry = {
            "incrementalizable": self.incrementalizable,
            "reason": self.reason,
        }
        if self.plan is not None:
            entry["plan"] = plan_summary(self.plan)
        return entry


def plan_summary(plan: IncrementalPlan) -> dict:
    """Human-readable description of a plan (diagnostics only)."""
    group_by = list(plan.delta.items[: plan.group_width])
    return {
        "group_by": [print_expr(item.expr) for item in group_by],
        "aggregates": [
            f"{_describe_aggregate(spec)} {spec.op} "
            + (
                print_expr(spec.threshold_expr)
                if spec.threshold_expr is not None
                else repr(spec.threshold)
            )
            for spec in plan.aggregates
        ],
        "windows": [
            f"T {'<' if window.strict else '<='} {print_expr(window.bound)}"
            for window in plan.windows
        ],
        "log_relations": list(plan.log_relations),
    }


def _describe_aggregate(spec: AggregateSpec) -> str:
    inner = print_expr(spec.arg)
    if spec.kind == "count_distinct":
        return f"count(distinct {inner})"
    return f"{spec.kind}({inner})"


def classify_policy(
    name: str,
    select: ast.Query,
    registry: LogRegistry,
    database: Optional[Database] = None,
    time_independent: bool = False,
    structure: Optional[PolicyStructure] = None,
) -> Classification:
    """Classify one effective (post-rewrite) policy query.

    ``time_independent`` marks policies whose evaluation is already
    increment-local (the rewrite was applied); they are classified
    full-eval because there is no cross-query state to maintain.
    """

    def refuse(reason: str) -> Classification:
        return Classification(name, False, reason)

    if time_independent:
        return refuse(
            "time-independent: evaluation is already increment-local"
        )
    if not isinstance(select, ast.Select):
        return refuse("set operations are not supported")
    if select.distinct_on or select.order_by or select.limit is not None:
        return refuse("DISTINCT ON / ORDER BY / LIMIT are not supported")
    for node in select.walk():
        if isinstance(node, (ast.SubqueryRef, ast.JoinRef)):
            return refuse("subqueries and explicit joins are not supported")
        if isinstance(node, (ast.Select, ast.SetOp)) and node is not select:
            return refuse("nested subqueries are not supported")

    if structure is None or structure.select is not select:
        structure = analyze_structure(select, registry, database)
    if not structure.log_occurrences:
        return refuse("no usage-log relation in FROM")

    occurrences = sorted(structure.log_occurrences)
    component = structure.ts_components.get(
        occurrences[0], {occurrences[0]}
    )
    if set(occurrences) != set(component):
        return refuse(
            "log occurrences span multiple timestamp-equivalence classes"
        )

    if structure.clock_predicates is None:
        return refuse("unsupported clock predicate shape")
    for predicate in structure.clock_predicates:
        if predicate.op not in ("<", "<="):
            return refuse(
                f"non-shrinking clock predicate (op {predicate.op!r})"
            )

    clock_indices = {
        predicate.conjunct_index
        for predicate in structure.clock_predicates
    }
    for index, conjunct in enumerate(structure.conjuncts):
        if index in clock_indices:
            continue
        problem = _reference_problem(conjunct, structure)
        if problem:
            return refuse(f"WHERE conjunct: {problem}")

    if not is_monotone(select):
        return refuse("non-monotone: the verdict could flip back off")

    group_exprs = list(select.group_by)
    for expr in group_exprs:
        problem = _reference_problem(expr, structure)
        if problem:
            return refuse(f"GROUP BY expression: {problem}")

    windows = tuple(
        WindowSpec(strict=(predicate.op == "<"), bound=predicate.bound)
        for predicate in structure.clock_predicates
    )
    for window in windows:
        problem = _reference_problem(window.bound, structure)
        if problem:
            return refuse(f"clock predicate bound: {problem}")

    aggregates, failure = _aggregate_specs(select, group_exprs, structure)
    if failure:
        return refuse(failure)
    assert aggregates is not None
    if windows and any(
        spec.kind in ("min", "max") for spec in aggregates
    ):
        return refuse("windowed min/max is not maintainable in O(1)")

    delta, threshold_offsets = _build_delta(
        select, structure, group_exprs, aggregates, windows, clock_indices
    )

    plan = IncrementalPlan(
        name=name,
        delta=delta,
        group_width=len(group_exprs),
        aggregates=aggregates,
        windows=windows,
        threshold_offsets=threshold_offsets,
        log_relations=tuple(sorted(structure.log_relation_names())),
        base_tables=tuple(sorted(set(structure.db_tables.values()))),
        signature=print_query(select),
    )
    described = ", ".join(
        f"{_describe_aggregate(spec)} {spec.op} "
        + (
            print_expr(spec.threshold_expr)
            if spec.threshold_expr is not None
            else repr(spec.threshold)
        )
        for spec in aggregates
    )
    shape = "windowed" if windows else "window-free"
    return Classification(
        name,
        True,
        f"monotone {shape} aggregate over "
        f"{'/'.join(plan.log_relations)}: {described}",
        plan=plan,
    )


def _reference_problem(
    expr: ast.Expr, structure: PolicyStructure
) -> Optional[str]:
    """Why an expression cannot appear in the delta query, or None."""
    aliases = aliases_of(expr, structure)
    if "?" in aliases:
        return "unresolvable column reference"
    if aliases & structure.clock_aliases:
        return "references the clock outside a window predicate"
    return None


def _aggregate_specs(
    select: ast.Select,
    group_exprs: "list[ast.Expr]",
    structure: PolicyStructure,
) -> "tuple[Optional[tuple[AggregateSpec, ...]], Optional[str]]":
    """Parse HAVING into oriented aggregate specs (or an existence check)."""
    if select.having is None:
        # Emptiness of an SPJ(+GROUP BY) query: any contributing row
        # makes some group non-empty.
        return (
            (
                AggregateSpec(
                    kind="count",
                    arg=ast.Literal(1),
                    op=">=",
                    threshold=1,
                ),
            ),
            None,
        )

    specs: "list[AggregateSpec]" = []
    for conjunct in ast.conjuncts(select.having):
        if not isinstance(conjunct, ast.BinaryOp):
            return None, "HAVING conjunct is not a threshold comparison"
        left_agg = _bare_aggregate(conjunct.left)
        right_agg = _bare_aggregate(conjunct.right)
        if left_agg is not None and right_agg is None:
            call, op, threshold = left_agg, conjunct.op, conjunct.right
        elif right_agg is not None and left_agg is None:
            if conjunct.op not in _FLIP:
                return None, f"unsupported HAVING operator {conjunct.op!r}"
            call, op, threshold = (
                right_agg,
                _FLIP[conjunct.op],
                conjunct.left,
            )
        else:
            return None, "HAVING conjunct is not AGG(...) vs threshold"
        if op not in (">", ">="):
            return None, (
                f"HAVING comparison {op!r} is not growing "
                "(the verdict could flip back off)"
            )
        if _contains_aggregate(threshold):
            return None, "aggregate on both sides of a HAVING conjunct"

        kind = call.name.lower()
        if kind not in SUPPORTED_AGGREGATES:
            return None, f"unsupported aggregate {call.name!r}"
        if len(call.args) > 1:
            return None, f"multi-argument aggregate {call.name!r}"
        if call.args and isinstance(call.args[0], ast.Star):
            arg: ast.Expr = ast.Literal(1)
        elif call.args:
            arg = call.args[0]
        else:
            arg = ast.Literal(1)
        if _contains_aggregate(arg):
            return None, "nested aggregate argument"
        problem = _reference_problem(arg, structure)
        if problem:
            return None, f"aggregate argument: {problem}"
        if call.distinct:
            if kind != "count":
                return None, f"DISTINCT {call.name} is not supported"
            kind = "count_distinct"

        if isinstance(threshold, ast.Literal):
            specs.append(
                AggregateSpec(
                    kind=kind, arg=arg, op=op, threshold=threshold.value
                )
            )
        elif threshold in group_exprs:
            # Functionally determined by the group key (unification
            # appends the constants columns to GROUP BY), so every delta
            # row of a group carries the same value.
            specs.append(
                AggregateSpec(
                    kind=kind,
                    arg=arg,
                    op=op,
                    threshold=None,
                    threshold_expr=threshold,
                )
            )
        else:
            return None, (
                "threshold is neither a literal nor a GROUP BY expression"
            )
    return tuple(specs), None


def _bare_aggregate(expr: ast.Expr) -> Optional[ast.FuncCall]:
    if isinstance(expr, ast.FuncCall) and expr.name.lower() in (
        SUPPORTED_AGGREGATES | {"avg"}
    ):
        return expr
    return None


def _contains_aggregate(expr: ast.Expr) -> bool:
    for node in expr.walk():
        if isinstance(node, ast.FuncCall) and node.name.lower() in (
            SUPPORTED_AGGREGATES | {"avg"}
        ):
            return True
    return False


def _build_delta(
    select: ast.Select,
    structure: PolicyStructure,
    group_exprs: "list[ast.Expr]",
    aggregates: "tuple[AggregateSpec, ...]",
    windows: "tuple[WindowSpec, ...]",
    clock_indices: "set[int]",
) -> "tuple[ast.Select, tuple[tuple[int, int], ...]]":
    """The contribution query: group key + agg args + bounds + thresholds."""
    items: "list[ast.SelectItem]" = []
    for position, expr in enumerate(group_exprs):
        items.append(ast.SelectItem(expr, alias=f"__g{position}"))
    for position, spec in enumerate(aggregates):
        items.append(ast.SelectItem(spec.arg, alias=f"__a{position}"))
    for position, window in enumerate(windows):
        items.append(ast.SelectItem(window.bound, alias=f"__w{position}"))
    threshold_offsets: "list[tuple[int, int]]" = []
    for position, spec in enumerate(aggregates):
        if spec.threshold_expr is not None:
            threshold_offsets.append((position, len(items)))
            items.append(
                ast.SelectItem(spec.threshold_expr, alias=f"__t{position}")
            )

    from_items = tuple(
        item
        for item in select.from_items
        if item.binding_name().lower() not in structure.clock_aliases
    )
    residual = [
        conjunct
        for index, conjunct in enumerate(structure.conjuncts)
        if index not in clock_indices
    ]
    delta = ast.Select(
        items=tuple(items),
        from_items=from_items,
        where=ast.conjoin(residual),
    )
    return delta, tuple(threshold_offsets)
