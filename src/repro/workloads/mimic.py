"""Synthetic stand-in for the MIMIC-II clinical database.

The paper evaluates on MIMIC-II (Multiparameter Intelligent Monitoring in
Intensive Care): ICU monitoring readings and clinical data for ~33k
patients, 21 GB. MIMIC-II is gated behind a data-use agreement — fittingly,
given the paper's topic — so this module generates a deterministic
synthetic database with the same relations, key structure and cardinality
*ratios*, scaled to laptop size:

- ``d_patients(subject_id, sex, dob, dod, hospital_expire_flg)``
- ``chartevents(subject_id, itemid, charttime, value1num, icustay_id)`` —
  many rows per patient; itemid 211 is the heart-rate series the paper's
  queries filter on
- ``poe_order(poe_id, subject_id, medication, start_dt)`` and
  ``poe_med(poe_id, dose, route)`` — provider order entries (policy P2
  restricts joining these)
- ``icustay_detail(icustay_id, subject_id, los)``
- ``groups(uid, gid)`` — the user-group relation policies join against
  (group ``'X'`` contains user 1 but not user 0, as in §5's setup)

Everything is derived from a seeded PRNG, so two databases built with the
same :class:`MimicConfig` are identical row for row.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..engine import Database


@dataclass(frozen=True)
class MimicConfig:
    """Scale knobs for the synthetic MIMIC-II database."""

    n_patients: int = 1500
    #: Heart-rate (itemid 211) events per patient: base + pid-dependent.
    hr_events_base: int = 4
    hr_events_spread: int = 9
    #: Other-vitals (itemid 618) events per patient.
    other_events_base: int = 2
    other_events_spread: int = 3
    orders_per_patient: int = 2
    seed: int = 7
    #: Extra users placed in group 'X' besides user 1 (users 2..k+1).
    extra_group_x_users: int = 4

    @property
    def half_patients(self) -> int:
        return self.n_patients // 2


def hr_event_count(config: MimicConfig, subject_id: int) -> int:
    """Deterministic itemid-211 event count for one patient."""
    return config.hr_events_base + (subject_id * 7) % config.hr_events_spread


def build_mimic_database(config: MimicConfig = MimicConfig()) -> Database:
    """Generate the full synthetic database."""
    rng = random.Random(config.seed)
    database = Database()

    patients = []
    for subject_id in range(1, config.n_patients + 1):
        sex = "m" if rng.random() < 0.55 else "f"
        dob = 1920 + rng.randrange(80)
        expired = rng.random() < 0.11
        dod = dob + 40 + rng.randrange(45) if expired else None
        patients.append((subject_id, sex, dob, dod, expired))
    database.load_table(
        "d_patients",
        ["subject_id", "sex", "dob", "dod", "hospital_expire_flg"],
        patients,
    )

    chartevents = []
    icustays = []
    for subject_id in range(1, config.n_patients + 1):
        icustay_id = 10000 + subject_id
        icustays.append((icustay_id, subject_id, round(rng.uniform(0.5, 21.0), 1)))
        charttime = rng.randrange(1000)
        for _ in range(hr_event_count(config, subject_id)):
            charttime += rng.randrange(1, 60)
            chartevents.append(
                (subject_id, 211, charttime, 55 + rng.randrange(90), icustay_id)
            )
        count_other = config.other_events_base + subject_id % config.other_events_spread
        for _ in range(count_other):
            charttime += rng.randrange(1, 60)
            chartevents.append(
                (subject_id, 618, charttime, 8 + rng.randrange(30), icustay_id)
            )
    database.load_table(
        "chartevents",
        ["subject_id", "itemid", "charttime", "value1num", "icustay_id"],
        chartevents,
    )
    database.load_table(
        "icustay_detail", ["icustay_id", "subject_id", "los"], icustays
    )

    medications = ("heparin", "insulin", "propofol", "vancomycin", "fentanyl")
    routes = ("iv", "po", "im")
    orders = []
    meds = []
    poe_id = 0
    for subject_id in range(1, config.n_patients + 1):
        for _ in range(config.orders_per_patient):
            poe_id += 1
            orders.append(
                (poe_id, subject_id, rng.choice(medications), rng.randrange(1000))
            )
            meds.append(
                (poe_id, round(rng.uniform(0.5, 20.0), 1), rng.choice(routes))
            )
    database.load_table(
        "poe_order", ["poe_id", "subject_id", "medication", "start_dt"], orders
    )
    database.load_table("poe_med", ["poe_id", "dose", "route"], meds)

    group_rows = [(1, "x")]
    for uid in range(2, 2 + config.extra_group_x_users):
        group_rows.append((uid, "x"))
    group_rows.extend(
        [(1, "researchers"), (0, "staff"), (2, "students"), (3, "students")]
    )
    database.load_table("groups", ["uid", "gid"], group_rows)

    return database


@dataclass
class MimicStats:
    """Row counts of a generated database, for sanity checks and docs."""

    tables: dict[str, int] = field(default_factory=dict)

    @classmethod
    def of(cls, database: Database) -> "MimicStats":
        return cls(
            tables={
                name: len(database.table(name))
                for name in database.table_names()
            }
        )
