"""The four experiment queries W1–W4 (Table 3 of the paper).

The queries are chosen to cover a wide range of runtimes: W1 is a point
lookup, W2 aggregates one patient's chart events, W3 a ~5% subject range,
W4 a ~43% subject range. The subject-id constants and HAVING thresholds
are expressed relative to the database scale so the same *shape* holds for
any :class:`~repro.workloads.mimic.MimicConfig` (at the default 1500
patients they match the paper's constants in spirit: 186, 489, 930–1000,
800–1450).
"""

from __future__ import annotations

from dataclasses import dataclass

from .mimic import MimicConfig


@dataclass(frozen=True)
class Workload:
    """Named SQL texts for the four experiment queries."""

    w1: str
    w2: str
    w3: str
    w4: str

    def all(self) -> dict[str, str]:
        return {"W1": self.w1, "W2": self.w2, "W3": self.w3, "W4": self.w4}

    def __getitem__(self, name: str) -> str:
        return self.all()[name.upper()]


def make_workload(config: MimicConfig = MimicConfig()) -> Workload:
    """Build W1–W4 scaled to ``config``."""
    n = config.n_patients

    def pid(fraction: float) -> int:
        return max(1, min(n, round(n * fraction)))

    w1_subject = pid(186 / 1500)
    w2_subject = pid(489 / 1500)
    w3_low, w3_high = pid(930 / 1500), pid(1000 / 1500)
    w4_low, w4_high = pid(800 / 1500), pid(1450 / 1500)

    # Per-patient itemid-211 counts range over
    # [hr_events_base, hr_events_base + hr_events_spread).
    w3_threshold = config.hr_events_base + config.hr_events_spread // 3
    w4_threshold = config.hr_events_base + (2 * config.hr_events_spread) // 3

    w1 = f"SELECT * FROM d_patients WHERE subject_id = {w1_subject}"
    w2 = (
        "SELECT c.subject_id, p.sex, COUNT(c.subject_id) "
        "FROM chartevents c, d_patients p "
        f"WHERE c.subject_id = {w2_subject} AND p.subject_id = c.subject_id "
        "AND itemid = 211 "
        "GROUP BY c.subject_id, p.sex HAVING COUNT(c.subject_id) > 1"
    )
    w3 = (
        "SELECT c.subject_id, p.sex, COUNT(c.subject_id) "
        "FROM chartevents c, d_patients p "
        f"WHERE c.subject_id < {w3_high} AND c.subject_id > {w3_low} "
        "AND p.subject_id = c.subject_id AND itemid = 211 "
        "GROUP BY c.subject_id, p.sex "
        f"HAVING COUNT(c.subject_id) > {w3_threshold}"
    )
    w4 = (
        "SELECT c.subject_id, p.sex, COUNT(c.subject_id) "
        "FROM chartevents c, d_patients p "
        f"WHERE c.subject_id < {w4_high} AND c.subject_id > {w4_low} "
        "AND p.subject_id = c.subject_id AND itemid = 211 "
        "GROUP BY c.subject_id, p.sex "
        f"HAVING COUNT(c.subject_id) > {w4_threshold}"
    )
    return Workload(w1=w1, w2=w2, w3=w3, w4=w4)
