"""A second workload domain: a commercial data marketplace.

The paper's introduction motivates DataLawyer with commercial data
vendors (Navteq, Yelp, Twitter, MS Translator, Factual…). This module
packages that setting as a reusable workload, complementing the clinical
MIMIC workload of :mod:`repro.workloads.mimic`:

- a deterministic generator for a vendor catalog: ``listings``,
  ``ratings`` (the premium, restricted table), ``vendors`` and
  ``subscribers`` (the marketplace's own user directory, joinable by
  policies);
- the vendor's standard contract as a policy set, built from the §6
  template registry: per-subscriber rate limits, a free-tier volume
  quota on ``listings``, and no blending of ``ratings`` (Yelp's term:
  joins for display are fine, aggregation is not);
- canonical queries (M1–M4) spanning lookup, display join, analytics and
  bulk read — the marketplace analogue of W1–W4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core import BUILTIN_TEMPLATES, Policy
from ..engine import Database


@dataclass(frozen=True)
class MarketplaceConfig:
    """Scale and contract knobs."""

    n_listings: int = 400
    n_subscribers: int = 8
    n_vendors: int = 12
    seed: int = 21
    #: contract terms
    rate_limit: int = 30
    rate_window: int = 10_000
    free_tier_tuples: int = 2_000
    free_tier_window: int = 100_000


CATEGORIES = ("food", "retail", "health", "travel", "services")


def build_marketplace_database(
    config: MarketplaceConfig = MarketplaceConfig(),
) -> Database:
    """Generate the marketplace catalog deterministically."""
    rng = random.Random(config.seed)
    db = Database()

    db.load_table(
        "vendors",
        ["vendor_id", "vname", "tier"],
        [
            (v, f"vendor-{v}", rng.choice(["basic", "premium"]))
            for v in range(1, config.n_vendors + 1)
        ],
    )

    listings = []
    ratings = []
    for biz in range(1, config.n_listings + 1):
        vendor = rng.randrange(1, config.n_vendors + 1)
        listings.append(
            (
                biz,
                f"biz-{biz}",
                rng.choice(CATEGORIES),
                vendor,
                rng.randrange(90001, 99999),
            )
        )
        ratings.append(
            (biz, 1 + rng.randrange(5), 5 * rng.randrange(1, 200))
        )
    db.load_table(
        "listings",
        ["biz_id", "name", "category", "vendor_id", "zip"],
        listings,
    )
    db.load_table("ratings", ["biz_id", "stars", "review_count"], ratings)

    db.load_table(
        "subscribers",
        ["uid", "plan"],
        [
            (uid, "free" if uid % 2 else "paid")
            for uid in range(1, config.n_subscribers + 1)
        ],
    )
    return db


def standard_contract(config: MarketplaceConfig = MarketplaceConfig()) -> list[Policy]:
    """The vendor's terms of use as enforceable policies.

    Rate limits are one templated policy per subscriber (the offline phase
    unifies them); the remaining terms are shared.
    """
    policies: list[Policy] = [
        BUILTIN_TEMPLATES.instantiate(
            "rate-limit",
            policy_name=f"rate-u{uid}",
            uid=uid,
            max_requests=config.rate_limit,
            window=config.rate_window,
        )
        for uid in range(1, config.n_subscribers + 1)
    ]
    policies.append(
        BUILTIN_TEMPLATES.instantiate(
            "no-aggregation", policy_name="no-blending", relation="ratings"
        )
    )
    policies.append(
        BUILTIN_TEMPLATES.instantiate(
            "volume-quota",
            policy_name="free-tier",
            relation="listings",
            max_tuples=config.free_tier_tuples,
            window=config.free_tier_window,
        )
    )
    return policies


def sharded_contract(config: MarketplaceConfig = MarketplaceConfig()) -> list[Policy]:
    """The standard contract rewritten per-subscriber so every term is
    shard-local (see :mod:`repro.service.placement`).

    The global ``volume-quota`` (one counter over *all* subscribers)
    cannot be enforced per-uid, so this variant meters the free tier per
    subscriber instead — the common SaaS reading of the same clause. All
    terms here classify *local*, so a multi-shard
    :class:`~repro.service.ShardedEnforcerService` accepts the set.
    """
    policies: list[Policy] = [
        BUILTIN_TEMPLATES.instantiate(
            "rate-limit",
            policy_name=f"rate-u{uid}",
            uid=uid,
            max_requests=config.rate_limit,
            window=config.rate_window,
        )
        for uid in range(1, config.n_subscribers + 1)
    ]
    policies.append(
        BUILTIN_TEMPLATES.instantiate(
            "no-aggregation", policy_name="no-blending", relation="ratings"
        )
    )
    policies.extend(
        BUILTIN_TEMPLATES.instantiate(
            "user-volume-quota",
            policy_name=f"free-tier-u{uid}",
            relation="listings",
            uid=uid,
            max_tuples=config.free_tier_tuples,
            window=config.free_tier_window,
        )
        for uid in range(1, config.n_subscribers + 1)
    )
    return policies


@dataclass(frozen=True)
class MarketplaceWorkload:
    """Canonical marketplace queries, cheapest to heaviest."""

    m1: str  # point lookup
    m2: str  # display join (allowed by the Yelp-style term)
    m3: str  # category analytics over listings only
    m4: str  # bulk read of the catalog

    def all(self) -> dict[str, str]:
        return {"M1": self.m1, "M2": self.m2, "M3": self.m3, "M4": self.m4}

    def __getitem__(self, name: str) -> str:
        return self.all()[name.upper()]


def make_marketplace_workload(
    config: MarketplaceConfig = MarketplaceConfig(),
) -> MarketplaceWorkload:
    target = max(1, config.n_listings // 3)
    return MarketplaceWorkload(
        m1=f"SELECT name, category FROM listings WHERE biz_id = {target}",
        m2=(
            "SELECT l.name, r.stars, r.review_count "
            "FROM listings l, ratings r "
            f"WHERE l.biz_id = r.biz_id AND l.biz_id = {target}"
        ),
        m3=(
            "SELECT category, COUNT(*) FROM listings "
            "GROUP BY category"
        ),
        m4="SELECT * FROM listings",
    )
