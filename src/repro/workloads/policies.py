"""The six experiment policies P1–P6 (Table 2) and Table 1 exemplars.

Windows are integer clock units; with
:class:`~repro.log.clock.SimulatedClock` they read as milliseconds, so the
defaults match the paper's 200 ms / 3 s / 300 ms windows. Thresholds are
parameterized so tests can force violations while the benchmarks keep the
workload compliant (the paper measures the all-policies-satisfied path).

Expected classification, verified by the test suite:

========  ==========  =================  ============  ===================
policy    logs used   time-independent?  monotone?     window
========  ==========  =================  ============  ===================
P1        users       no                 yes           200 (ms)
P2        u + schema  yes                yes           —
P3        u + prov    yes                yes           —
P4        u + prov    yes                no (<=)       —
P5        u + prov    no                 yes           3000 (ms)
P6        u + prov    no                 yes           300 (ms)
========  ==========  =================  ============  ===================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import Policy
from .mimic import MimicConfig


@dataclass(frozen=True)
class PolicyParams:
    """Thresholds and windows for P1–P6."""

    #: P1: max distinct group-X users per window.
    p1_max_users: int = 10
    p1_window: int = 200
    #: P2/P3/P4 target this user.
    restricted_uid: int = 1
    #: P3: max output tuples from d_patients.
    p3_max_output: int = 400
    #: P4: minimum provenance support per output tuple (violation at <=).
    p4_min_support: int = 3
    #: P5: max distinct d_patients tuples used per window.
    p5_max_tuples: int = 750
    p5_window: int = 3000
    #: P6: max uses of the same d_patients tuple per window.
    p6_max_uses: int = 1000
    p6_window: int = 300

    @classmethod
    def for_config(cls, config: MimicConfig, **overrides) -> "PolicyParams":
        """Defaults scaled to the database: P5's cap is half of d_patients
        (the paper's phrasing), P3's cap sits above W4's output size."""
        values = dict(
            p5_max_tuples=config.half_patients,
            p3_max_output=max(100, config.n_patients // 3),
        )
        values.update(overrides)
        return cls(**values)


def make_p1(params: PolicyParams = PolicyParams()) -> Policy:
    return Policy.from_sql(
        "P1",
        f"""SELECT DISTINCT 'P1 violated: more than {params.p1_max_users} users
            from group x queried within {params.p1_window} time units'
            FROM users u, groups g, clock c
            WHERE u.uid = g.uid AND g.gid = 'x'
              AND u.ts > c.ts - {params.p1_window}
            HAVING COUNT(DISTINCT u.uid) > {params.p1_max_users}""",
        description="Rate limit on group-X users (Table 2, P1).",
    )


def make_p2(params: PolicyParams = PolicyParams()) -> Policy:
    uid = params.restricted_uid
    return Policy.from_sql(
        "P2",
        f"""SELECT DISTINCT 'P2 violated: user {uid} joined poe_order with a
            relation other than poe_med'
            FROM users u, schema s1, schema s2
            WHERE u.ts = s1.ts AND s1.ts = s2.ts AND u.uid = {uid}
              AND s1.irid = 'poe_order'
              AND s2.irid <> 'poe_order' AND s2.irid <> 'poe_med'""",
        description="Join restriction on poe_order (Table 2, P2).",
    )


def make_p3(params: PolicyParams = PolicyParams()) -> Policy:
    uid = params.restricted_uid
    return Policy.from_sql(
        "P3",
        f"""SELECT DISTINCT 'P3 violated: user {uid} query on d_patients
            returned more than {params.p3_max_output} tuples'
            FROM users u, provenance p
            WHERE u.ts = p.ts AND u.uid = {uid} AND p.irid = 'd_patients'
            GROUP BY p.ts
            HAVING COUNT(DISTINCT p.otid) > {params.p3_max_output}""",
        description="Output-size cap on d_patients (Table 2, P3).",
    )


def make_p4(params: PolicyParams = PolicyParams()) -> Policy:
    uid = params.restricted_uid
    return Policy.from_sql(
        "P4",
        f"""SELECT DISTINCT 'P4 violated: an output tuple over chartevents
            for user {uid} has {params.p4_min_support} or fewer
            contributing input tuples'
            FROM users u, provenance p
            WHERE u.ts = p.ts AND u.uid = {uid} AND p.irid = 'chartevents'
            GROUP BY p.ts, p.otid
            HAVING COUNT(DISTINCT p.itid) <= {params.p4_min_support}""",
        description="Minimum aggregation support (Table 2, P4; like P5 of "
        "Table 1 — prevents identifying individuals).",
    )


def make_p5(params: PolicyParams = PolicyParams()) -> Policy:
    uid = params.restricted_uid
    return Policy.from_sql(
        "P5",
        f"""SELECT DISTINCT 'P5 violated: user {uid} used more than
            {params.p5_max_tuples} distinct d_patients tuples within
            {params.p5_window} time units'
            FROM users u, provenance p, clock c
            WHERE u.ts = p.ts AND u.uid = {uid} AND p.irid = 'd_patients'
              AND p.ts > c.ts - {params.p5_window}
            HAVING COUNT(DISTINCT p.itid) > {params.p5_max_tuples}""",
        description="Windowed cap on total d_patients usage (Table 2, P5).",
    )


def make_p6(params: PolicyParams = PolicyParams()) -> Policy:
    uid = params.restricted_uid
    return Policy.from_sql(
        "P6",
        f"""SELECT DISTINCT 'P6 violated: user {uid} used one d_patients
            tuple more than {params.p6_max_uses} times within
            {params.p6_window} time units'
            FROM users u, provenance p, clock c
            WHERE u.ts = p.ts AND u.uid = {uid} AND p.irid = 'd_patients'
              AND p.ts > c.ts - {params.p6_window}
            GROUP BY p.itid
            HAVING COUNT(p.ts) > {params.p6_max_uses}""",
        description="Windowed per-tuple reuse cap (Table 2, P6).",
    )


_MAKERS = {
    "P1": make_p1,
    "P2": make_p2,
    "P3": make_p3,
    "P4": make_p4,
    "P5": make_p5,
    "P6": make_p6,
}


def make_policy(name: str, params: PolicyParams = PolicyParams()) -> Policy:
    """Build one of P1–P6 by name."""
    return _MAKERS[name.upper()](params)


def make_all_policies(params: PolicyParams = PolicyParams()) -> list[Policy]:
    """All six experiment policies."""
    return [maker(params) for maker in _MAKERS.values()]


# ---------------------------------------------------------------------------
# Table 1 exemplars: the survey policies the introduction motivates.
# ---------------------------------------------------------------------------


def navteq_no_overlay() -> Policy:
    """Table 1, P1: overlaying Navteq data with other data is prohibited."""
    return Policy.from_sql(
        "navteq-no-overlay",
        """SELECT DISTINCT 'Overlaying navteq data with other data is
           prohibited'
           FROM schema p1, schema p2
           WHERE p1.ts = p2.ts AND p1.irid = 'navteq'
             AND p2.irid <> 'navteq'""",
        description="Navteq terms of use: no joins with external datasets.",
    )


def rate_limit(max_requests: int, window: int, relation: str) -> Policy:
    """Table 1, P4: at most ``max_requests`` queries over ``relation`` per
    window (Twitter/Foursquare-style rate limiting)."""
    return Policy.from_sql(
        f"rate-limit-{relation}",
        f"""SELECT DISTINCT 'Rate limit exceeded: more than {max_requests}
            requests in {window} time units'
            FROM users u, schema s, clock c
            WHERE u.ts = s.ts AND s.irid = '{relation}'
              AND u.ts > c.ts - {window}
            HAVING COUNT(DISTINCT u.ts) > {max_requests}""",
        description="API rate limiting via the usage log.",
    )


def k_anonymity(relation: str, k: int) -> Policy:
    """Table 1, P5 / Example 3.1 (P5b): every output tuple must draw on at
    least ``k`` tuples of ``relation``."""
    return Policy.from_sql(
        f"k-anon-{relation}",
        f"""SELECT DISTINCT 'Fewer than {k} {relation} tuples contribute to
            an answer'
            FROM provenance p
            WHERE p.irid = '{relation}'
            GROUP BY p.ts, p.otid
            HAVING COUNT(DISTINCT p.itid) < {k}""",
        description="Limit information disclosure (MIMIC-style).",
    )


def no_aggregation(relation: str) -> Policy:
    """Table 1, P7 (Yelp): joins/unions allowed, aggregation prohibited."""
    return Policy.from_sql(
        f"no-aggregation-{relation}",
        f"""SELECT DISTINCT 'Aggregating {relation} data is prohibited'
            FROM schema s
            WHERE s.irid = '{relation}' AND s.agg = TRUE""",
        description="Yelp terms: star ratings must stand on their own.",
    )


def monthly_quota(relation: str, max_tuples: int, window: int) -> Policy:
    """Table 1, P3 (MS Translator): total output volume cap per window."""
    # Output tuples are identified by (ts, otid); otid alone restarts at 0
    # for every query, so the distinct count keys on their concatenation.
    return Policy.from_sql(
        f"quota-{relation}",
        f"""SELECT DISTINCT 'Free-tier quota exceeded for {relation}'
            FROM provenance p, clock c
            WHERE p.irid = '{relation}' AND p.ts > c.ts - {window}
            HAVING COUNT(DISTINCT p.ts || ':' || p.otid) > {max_tuples}""",
        description="Volume cap per billing window.",
    )
