"""Experiment driver: builds enforcers over the MIMIC workload and runs
query streams, collecting the per-phase metrics the paper reports.

The benchmarks (``benchmarks/bench_*.py``) are thin wrappers over this
module so the same machinery is unit-testable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from ..core import Decision, Enforcer, EnforcerOptions, MetricsLog, Policy
from ..engine import Database
from ..errors import ServiceOverloadedError
from ..log import SimulatedClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..service import ShardedEnforcerService
from .mimic import MimicConfig, build_mimic_database
from .policies import PolicyParams, make_all_policies, make_policy
from .queries import Workload, make_workload

#: Modeled per-statement client↔server dispatch latency, in seconds. The
#: paper's serial-vs-union gap in Figure 5 comes from JDBC round trips; our
#: engine is in-process, so the harness adds this per executed statement
#: when reporting, keeping the same O(statements) effect visible.
DISPATCH_SECONDS = 0.0002


@dataclass
class Experiment:
    """A ready-to-run enforcement setup over a fresh database."""

    database: Database
    enforcer: Enforcer
    workload: Workload
    config: MimicConfig
    params: PolicyParams

    @property
    def metrics(self) -> MetricsLog:
        return self.enforcer.metrics_log


def build_experiment(
    policies: Optional[Sequence[Policy]] = None,
    policy_names: Optional[Sequence[str]] = None,
    config: Optional[MimicConfig] = None,
    params: Optional[PolicyParams] = None,
    options: Optional[EnforcerOptions] = None,
    clock_step_ms: int = 10,
) -> Experiment:
    """Create a fresh database + enforcer + workload.

    Either pass ``policies`` directly or ``policy_names`` (subset of
    P1..P6); with neither, all six experiment policies are installed.
    """
    config = config or MimicConfig()
    params = params or PolicyParams.for_config(config)
    database = build_mimic_database(config)
    if policies is None:
        if policy_names is not None:
            policies = [make_policy(name, params) for name in policy_names]
        else:
            policies = make_all_policies(params)
    enforcer = Enforcer(
        database,
        policies,
        clock=SimulatedClock(default_step_ms=clock_step_ms),
        options=options or EnforcerOptions.datalawyer(),
    )
    workload = make_workload(config)
    return Experiment(
        database=database,
        enforcer=enforcer,
        workload=workload,
        config=config,
        params=params,
    )


@dataclass
class StreamResult:
    """Outcome of running a stream of queries through one enforcer."""

    allowed: int = 0
    rejected: int = 0
    metrics: MetricsLog = field(default_factory=MetricsLog)

    @property
    def total(self) -> int:
        return self.allowed + self.rejected


def run_stream(
    enforcer: Enforcer,
    queries: Sequence[tuple[str, int]],
    execute: bool = True,
) -> StreamResult:
    """Submit ``(sql, uid)`` pairs in order; returns the aggregate result.

    The returned :class:`MetricsLog` holds only this stream's entries (the
    enforcer's own log keeps accumulating across streams).
    """
    result = StreamResult()
    start = len(enforcer.metrics_log)
    for sql, uid in queries:
        decision = enforcer.submit(sql, uid=uid, execute=execute)
        if decision.allowed:
            result.allowed += 1
        else:
            result.rejected += 1
    result.metrics = MetricsLog(entries=enforcer.metrics_log.entries[start:])
    return result


def repeat_query(sql: str, uid: int, count: int) -> list[tuple[str, int]]:
    """A stream consisting of one query repeated ``count`` times."""
    return [(sql, uid)] * count


def round_robin(
    queries: Sequence[str], uids: Sequence[int], count: int
) -> list[tuple[str, int]]:
    """Interleave queries and uids round-robin for ``count`` submissions."""
    stream: list[tuple[str, int]] = []
    for index in range(count):
        sql = queries[index % len(queries)]
        uid = uids[index % len(uids)]
        stream.append((sql, uid))
    return stream


def dispatch_cost(statements: int) -> float:
    """Modeled dispatch latency for ``statements`` round trips (seconds)."""
    return statements * DISPATCH_SECONDS


# ----------------------------------------------------------------------
# concurrent streams through the sharded service
# ----------------------------------------------------------------------


def split_by_uid(
    queries: Sequence[tuple[str, int]],
) -> "dict[int, list[str]]":
    """Partition an interleaved ``(sql, uid)`` stream into per-uid
    subsequences, preserving each uid's submission order."""
    per_uid: dict[int, list[str]] = {}
    for sql, uid in queries:
        per_uid.setdefault(uid, []).append(sql)
    return per_uid


@dataclass
class ServiceStreamResult:
    """Outcome of pushing a stream through a sharded service."""

    allowed: int = 0
    rejected: int = 0
    overloads: int = 0  # 429-equivalent retries (not final failures)
    elapsed: float = 0.0
    #: every decision, in per-uid submission order
    decisions: "dict[int, list[Decision]]" = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.allowed + self.rejected

    @property
    def qps(self) -> float:
        return self.total / self.elapsed if self.elapsed else 0.0


def run_service_stream(
    service: "ShardedEnforcerService",
    queries: Sequence[tuple[str, int]],
    client_threads: int = 8,
    execute: bool = True,
    max_retries: int = 1000,
    retry_after_ceiling: float = 1.0,
) -> ServiceStreamResult:
    """Drive ``(sql, uid)`` pairs through the service from many client
    threads, preserving each uid's submission order.

    Whole uids are assigned round-robin to client threads (queries for
    one user come from one client, like real sessions), so per-uid
    sequences stay ordered while different users overlap. Backpressure
    (:class:`~repro.errors.ServiceOverloadedError`) is retried after the
    hinted delay and tallied in ``overloads``. The hint is honored up to
    ``retry_after_ceiling`` seconds — a cap against a pathological hint,
    not a hammer: clamping every sleep to tens of milliseconds (as this
    runner once did) turns a backed-up shard into a retry storm.
    """
    per_uid = split_by_uid(queries)
    uids = list(per_uid)
    assignments: list[list[int]] = [[] for _ in range(max(1, client_threads))]
    for position, uid in enumerate(uids):
        assignments[position % len(assignments)].append(uid)

    result = ServiceStreamResult(decisions={uid: [] for uid in uids})
    tally = threading.Lock()
    errors: "list[BaseException]" = []

    def client(my_uids: "list[int]") -> None:
        try:
            for uid in my_uids:
                for sql in per_uid[uid]:
                    retries = 0
                    while True:
                        try:
                            decision = service.submit(
                                sql, uid=uid, execute=execute
                            )
                            break
                        except ServiceOverloadedError as error:
                            retries += 1
                            if retries > max_retries:
                                raise
                            with tally:
                                result.overloads += 1
                            time.sleep(
                                min(error.retry_after, retry_after_ceiling)
                            )
                    with tally:
                        result.decisions[uid].append(decision)
                        if decision.allowed:
                            result.allowed += 1
                        else:
                            result.rejected += 1
        except BaseException as error:  # surfaced to the caller below
            with tally:
                errors.append(error)

    threads = [
        threading.Thread(target=client, args=(chunk,), daemon=True)
        for chunk in assignments
        if chunk
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return result
