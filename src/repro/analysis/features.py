"""Structural analysis of a policy query.

Everything in §4 of the paper reasons over the same handful of facts about
a policy: which FROM items are usage-log relations (vs. database tables vs.
the Clock), which conjuncts equi-join timestamps (the *neighborhood*
relation of Lemma 4.1), and how predicates mention the clock. This module
extracts those facts once into a :class:`PolicyStructure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine import Database
from ..errors import PolicySyntaxError
from ..log import LogRegistry
from ..log.store import CLOCK_TABLE
from ..sql import ast

#: Sentinel substituted for the paper's ``currenttime`` constant when
#: witness queries are instantiated (Lemma 4.3). Executing a query that
#: still contains it fails loudly with an unknown-table error.
CURRENT_TIME_PARAM = ast.ColumnRef("__currenttime__", "value")


def substitute_current_time(query: ast.Node, now: int) -> ast.Node:
    """Replace the ``currenttime`` sentinel with a literal timestamp."""

    def replace(node: ast.Node) -> Optional[ast.Node]:
        if node == CURRENT_TIME_PARAM:
            return ast.Literal(now)
        return None

    return ast.transform(query, replace)


@dataclass(frozen=True)
class ClockPredicate:
    """A clock conjunct normalized to ``c.ts <op> bound`` (Lemma 4.3).

    ``bound`` never references the clock. The original conjunct index lets
    rewrites drop/replace it in place.
    """

    op: str  # "<" | "<=" | ">" | ">=" | "="
    bound: ast.Expr
    conjunct_index: int


@dataclass
class PolicyStructure:
    """Facts about one SELECT block needed by the §4 algorithms."""

    select: ast.Select
    #: alias → log relation name, for FROM items that are log relations.
    log_occurrences: dict[str, str] = field(default_factory=dict)
    #: alias → table name, for other base tables (excluding Clock).
    db_tables: dict[str, str] = field(default_factory=dict)
    #: aliases bound to the Clock relation.
    clock_aliases: set[str] = field(default_factory=set)
    #: alias → subquery AST for FROM subqueries.
    subqueries: dict[str, ast.Query] = field(default_factory=dict)
    #: WHERE conjuncts, in order.
    conjuncts: list[ast.Expr] = field(default_factory=list)
    #: alias → set of aliases (log occurrences incl. itself) reachable via
    #: ts-equijoins — the paper's N(Ri) plus the relation itself.
    ts_components: dict[str, set[str]] = field(default_factory=dict)
    #: Normalized clock predicates; None when some clock conjunct does not
    #: fit the supported linear shapes (then compaction must retain all).
    clock_predicates: Optional[list[ClockPredicate]] = None
    #: alias → column names (log schema, catalog, or subquery output).
    alias_columns: dict[str, list[str]] = field(default_factory=dict)

    def neighborhood(self, alias: str) -> set[str]:
        """Other log occurrences ts-joined with ``alias`` (N(Ri))."""
        return self.ts_components.get(alias, {alias}) - {alias}

    def log_relation_names(self) -> set[str]:
        return set(self.log_occurrences.values())

    def references_clock(self) -> bool:
        return bool(self.clock_aliases)


def referenced_log_relations(query: ast.Query, registry: LogRegistry) -> set[str]:
    """All log relations referenced anywhere in a query (incl. subqueries)."""
    names: set[str] = set()
    for node in query.walk():
        if isinstance(node, ast.TableRef) and registry.is_log_relation(node.name):
            names.add(node.name.lower())
    return names


def analyze_structure(
    select: ast.Select,
    registry: LogRegistry,
    database: Optional[Database] = None,
) -> PolicyStructure:
    """Build the :class:`PolicyStructure` for one SELECT block.

    ``database`` (when available) supplies column lists of database tables
    so that unqualified column references can be attributed to an alias;
    without it, only log relations and subqueries are resolvable.
    """
    structure = PolicyStructure(select=select)

    for item in select.from_items:
        alias = item.binding_name().lower()
        if alias in structure.alias_columns:
            raise PolicySyntaxError(f"duplicate FROM alias {alias!r}")
        if isinstance(item, ast.TableRef):
            name = item.name.lower()
            if registry.is_log_relation(name):
                structure.log_occurrences[alias] = name
                structure.alias_columns[alias] = registry.get(name).full_columns
            elif name == CLOCK_TABLE:
                structure.clock_aliases.add(alias)
                structure.alias_columns[alias] = ["ts"]
            else:
                structure.db_tables[alias] = name
                if database is not None and database.has_table(name):
                    structure.alias_columns[alias] = list(
                        database.table(name).schema.column_names
                    )
                else:
                    structure.alias_columns[alias] = []
        elif isinstance(item, ast.SubqueryRef):
            structure.subqueries[alias] = item.query
            structure.alias_columns[alias] = _subquery_output_names(item.query)
        else:  # pragma: no cover - parser yields only these
            raise PolicySyntaxError(f"unsupported FROM item {type(item).__name__}")

    structure.conjuncts = ast.conjuncts(select.where)
    _compute_ts_components(structure)
    structure.clock_predicates = _normalize_clock_predicates(structure)
    return structure


def qualifier_for(
    ref: ast.ColumnRef, structure: PolicyStructure
) -> Optional[str]:
    """Alias a column ref belongs to, or None when unresolvable."""
    if ref.table is not None:
        alias = ref.table.lower()
        return alias if alias in structure.alias_columns else None
    matches = [
        alias
        for alias, columns in structure.alias_columns.items()
        if ref.name in columns
    ]
    return matches[0] if len(matches) == 1 else None


def aliases_of(expr: ast.Expr, structure: PolicyStructure) -> set[str]:
    """All aliases an expression's column refs resolve to.

    Unresolvable refs map to the pseudo-alias ``"?"`` so callers can treat
    them conservatively.
    """
    aliases: set[str] = set()
    for ref in ast.column_refs(expr):
        alias = qualifier_for(ref, structure)
        aliases.add(alias if alias is not None else "?")
    return aliases


def _subquery_output_names(query: ast.Query) -> list[str]:
    if isinstance(query, ast.SetOp):
        return _subquery_output_names(query.left)
    assert isinstance(query, ast.Select)
    names: list[str] = []
    for position, item in enumerate(query.items):
        if isinstance(item.expr, ast.Star):
            continue  # unknown expansion without a catalog; skip
        if item.alias:
            names.append(item.alias.lower())
        elif isinstance(item.expr, ast.ColumnRef):
            names.append(item.expr.name)
        elif isinstance(item.expr, ast.FuncCall):
            names.append(item.expr.name)
        else:
            names.append(f"col{position + 1}")
    return names


def _compute_ts_components(structure: PolicyStructure) -> None:
    """Union-find over ``X.ts = Y.ts`` conjuncts between log occurrences."""
    parents: dict[str, str] = {
        alias: alias for alias in structure.log_occurrences
    }

    def find(alias: str) -> str:
        while parents[alias] != alias:
            parents[alias] = parents[parents[alias]]
            alias = parents[alias]
        return alias

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parents[root_a] = root_b

    for conjunct in structure.conjuncts:
        pair = _ts_equijoin_pair(conjunct, structure)
        if pair is not None:
            union(*pair)

    components: dict[str, set[str]] = {}
    for alias in structure.log_occurrences:
        components.setdefault(find(alias), set()).add(alias)
    structure.ts_components = {
        alias: components[find(alias)] for alias in structure.log_occurrences
    }


def _ts_equijoin_pair(
    conjunct: ast.Expr, structure: PolicyStructure
) -> Optional[tuple[str, str]]:
    """If ``conjunct`` is ``a.ts = b.ts`` between two log occurrences,
    return the alias pair."""
    if not (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    ):
        return None
    left, right = conjunct.left, conjunct.right
    if left.name != "ts" or right.name != "ts":
        return None
    left_alias = qualifier_for(left, structure)
    right_alias = qualifier_for(right, structure)
    if (
        left_alias in structure.log_occurrences
        and right_alias in structure.log_occurrences
        and left_alias != right_alias
    ):
        return left_alias, right_alias
    return None


def ts_joined_with_clock(structure: PolicyStructure) -> set[str]:
    """Log aliases whose ts is equated with some clock alias's ts."""
    direct: set[str] = set()
    for conjunct in structure.conjuncts:
        if not (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            continue
        left_alias = qualifier_for(conjunct.left, structure)
        right_alias = qualifier_for(conjunct.right, structure)
        if (
            left_alias in structure.clock_aliases
            and conjunct.left.name == "ts"
            and right_alias in structure.log_occurrences
            and conjunct.right.name == "ts"
        ):
            direct.add(right_alias)
        if (
            right_alias in structure.clock_aliases
            and conjunct.right.name == "ts"
            and left_alias in structure.log_occurrences
            and conjunct.left.name == "ts"
        ):
            direct.add(left_alias)
    # Transitive through ts components.
    joined: set[str] = set()
    for alias in direct:
        joined |= structure.ts_components.get(alias, {alias})
    return joined


def _normalize_clock_predicates(
    structure: PolicyStructure,
) -> Optional[list[ClockPredicate]]:
    """Normalize every clock-referencing conjunct to ``c.ts op bound``.

    Supported shapes (op any of ``= < <= > >=``)::

        c.ts op expr          expr op c.ts
        c.ts ± k op expr      expr op c.ts ± k

    where ``expr`` does not reference the clock and ``k`` is a numeric
    literal. Anything else (``<>`` on the clock, clock-to-clock joins,
    nonlinear uses) returns None — compaction then retains everything, per
    the paper's restriction.
    """
    predicates: list[ClockPredicate] = []
    for index, conjunct in enumerate(structure.conjuncts):
        clock_refs = [
            ref
            for ref in ast.column_refs(conjunct)
            if qualifier_for(ref, structure) in structure.clock_aliases
        ]
        if not clock_refs:
            continue
        normalized = _normalize_one_clock_conjunct(conjunct, structure, index)
        if normalized is None:
            return None
        predicates.append(normalized)
    return predicates


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _normalize_one_clock_conjunct(
    conjunct: ast.Expr, structure: PolicyStructure, index: int
) -> Optional[ClockPredicate]:
    if not isinstance(conjunct, ast.BinaryOp):
        return None
    op = conjunct.op
    if op not in ("=", "<", "<=", ">", ">="):
        return None

    left_clock = _clock_side(conjunct.left, structure)
    right_clock = _clock_side(conjunct.right, structure)
    if (left_clock is None) == (right_clock is None):
        return None  # clock on both sides or neither side in linear form

    if left_clock is not None:
        shift = left_clock
        other = conjunct.right
        oriented_op = op
    else:
        assert right_clock is not None
        shift = right_clock
        other = conjunct.left
        oriented_op = _FLIP[op]

    # Now: (c.ts + shift) oriented_op other, with `other` clock-free.
    if _references_clock(other, structure):
        return None
    bound: ast.Expr = other
    if shift != _ZERO:
        bound = ast.BinaryOp("-", other, shift)
    return ClockPredicate(op=oriented_op, bound=bound, conjunct_index=index)


_ZERO = ast.Literal(0)


def _references_clock(expr: ast.Expr, structure: PolicyStructure) -> bool:
    return any(
        qualifier_for(ref, structure) in structure.clock_aliases
        for ref in ast.column_refs(expr)
    )


def _clock_side(
    expr: ast.Expr, structure: PolicyStructure
) -> Optional[ast.Expr]:
    """If ``expr`` is linear in the clock — ``c.ts`` or ``c.ts ± shift``
    with a clock-free shift — return the shift expression, else None.

    The shift may reference relation attributes (a unified policy's window
    lives in a constants-table column), not just literals.
    """

    def is_clock_ts(node: ast.Expr) -> bool:
        return (
            isinstance(node, ast.ColumnRef)
            and node.name == "ts"
            and qualifier_for(node, structure) in structure.clock_aliases
        )

    if is_clock_ts(expr):
        return _ZERO
    if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-"):
        if is_clock_ts(expr.left) and not _references_clock(
            expr.right, structure
        ):
            if expr.op == "+":
                return expr.right
            return ast.UnaryOp("-", expr.right)
        if (
            expr.op == "+"
            and is_clock_ts(expr.right)
            and not _references_clock(expr.left, structure)
        ):
            return expr.left
    return None
