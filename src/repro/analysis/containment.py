"""Conjunctive-query containment via homomorphisms (Chandra & Merlin).

The paper's Lemma 4.4 proof rests on the classic result ([30] in its
bibliography): for conjunctive queries, π ⊆ π' iff there is a query
homomorphism π' → π. This module implements a sound (conservative)
containment test for the Boolean policy fragment, used to *statically*
verify that an approximate policy's screen really is a necessary
condition (π ⇒ screen), instead of only detecting misses at runtime.

Scope and conservatism:

- both queries must be plain conjunctive blocks: base-table FROM items,
  conjunctive WHERE, no FROM-subqueries; the *screen* must have no HAVING
  (a screen's HAVING can only make it stricter, which is unsafe anyway);
- equality conjuncts are reasoned about through equivalence classes
  (union-find over columns and constants);
- any other predicate of the screen must map, under the candidate
  homomorphism and modulo the equality classes, to a syntactically
  identical predicate of π;
- the answer ``True`` is a proof; ``False`` means "not proven" (the test
  never claims non-containment).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Union

from ..sql import ast

#: A term in the equality reasoning: a column of an alias, or a constant.
Term = Union[tuple[str, str], tuple[None, ast.LiteralValue]]


@dataclass
class _Block:
    """One conjunctive block, decomposed."""

    aliases: dict[str, str]  # alias -> relation name
    equalities: list[tuple[Term, Term]]
    other_conjuncts: list[ast.Expr]

    @classmethod
    def of(cls, select: ast.Select) -> Optional["_Block"]:
        aliases: dict[str, str] = {}
        for item in select.from_items:
            if not isinstance(item, ast.TableRef):
                return None  # subqueries / joins: out of scope
            aliases[item.binding_name().lower()] = item.name.lower()

        equalities: list[tuple[Term, Term]] = []
        others: list[ast.Expr] = []
        for conjunct in ast.conjuncts(select.where):
            terms = _equality_terms(conjunct)
            if terms is not None:
                equalities.append(terms)
            else:
                others.append(conjunct)
        return cls(aliases, equalities, others)


def _equality_terms(conjunct: ast.Expr) -> Optional[tuple[Term, Term]]:
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None
    left = _as_term(conjunct.left)
    right = _as_term(conjunct.right)
    if left is None or right is None:
        return None
    return left, right


def _as_term(expr: ast.Expr) -> Optional[Term]:
    if isinstance(expr, ast.ColumnRef) and expr.table is not None:
        return (expr.table.lower(), expr.name)
    if isinstance(expr, ast.Literal):
        return (None, expr.value)
    return None


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent == term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, a: Term, b: Term) -> None:
        self._parent[self.find(a)] = self.find(b)

    def same(self, a: Term, b: Term) -> bool:
        return self.find(a) == self.find(b)


def _canonicalize(expr: ast.Expr, classes: _UnionFind) -> ast.Expr:
    """Rewrite each qualified column ref to its equality-class rep."""

    def rep(node: ast.Node) -> Optional[ast.Node]:
        term = _as_term(node) if isinstance(node, ast.Expr) else None
        if term is None:
            return None
        root = classes.find(term)
        if root[0] is None:
            return ast.Literal(root[1])
        return ast.ColumnRef(root[0], root[1])

    return ast.transform(expr, rep)


def cq_implies(policy: ast.Select, screen: ast.Select) -> bool:
    """Prove π ⇒ screen for conjunctive blocks (False = not proven).

    Looks for a homomorphism mapping the screen's aliases into π's aliases
    (same relation), under which every screen conjunct is implied by π's
    conjuncts: equalities must hold in π's equality classes; any other
    predicate must canonicalize to one of π's predicates.
    """
    pi = _Block.of(policy)
    sc = _Block.of(screen)
    if pi is None or sc is None:
        return False
    if screen.having is not None:
        return False  # a screen with HAVING can be stricter than π

    # π's equality classes, seeded by its equality conjuncts.
    classes = _UnionFind()
    for a, b in pi.equalities:
        classes.union(a, b)
    pi_predicates = {_canonicalize(c, classes) for c in pi.other_conjuncts}

    screen_aliases = sorted(sc.aliases)
    candidate_targets = [
        [
            target
            for target, relation in pi.aliases.items()
            if relation == sc.aliases[alias]
        ]
        for alias in screen_aliases
    ]
    if any(not targets for targets in candidate_targets):
        return False

    for assignment in itertools.product(*candidate_targets):
        mapping = dict(zip(screen_aliases, assignment))
        if _mapping_works(sc, mapping, classes, pi_predicates):
            return True
    return False


def _rename(expr: ast.Expr, mapping: dict[str, str]) -> ast.Expr:
    def rename(node: ast.Node) -> Optional[ast.Node]:
        if isinstance(node, ast.ColumnRef) and node.table is not None:
            target = mapping.get(node.table.lower())
            if target is not None and target != node.table:
                return ast.ColumnRef(target, node.name)
        return None

    return ast.transform(expr, rename)


def _mapping_works(
    screen: _Block,
    mapping: dict[str, str],
    classes: _UnionFind,
    pi_predicates: set,
) -> bool:
    def map_term(term: Term) -> Term:
        if term[0] is None:
            return term
        return (mapping.get(term[0], term[0]), term[1])

    for a, b in screen.equalities:
        if not classes.same(map_term(a), map_term(b)):
            return False
    for conjunct in screen.other_conjuncts:
        renamed = _rename(conjunct, mapping)
        canonical = _canonicalize(renamed, classes)
        if canonical not in pi_predicates:
            return False
    return True


def screen_is_sound(policy: ast.Select, screen: ast.Select) -> bool:
    """Alias of :func:`cq_implies` with the approximate-policy reading:
    True proves the screen never misses a violation of ``policy``."""
    return cq_implies(policy, screen)
