"""Policy unification (§4.2.2).

Policies that differ only in constants are consolidated into a single
policy that joins a generated constants table, turning O(n) policy
evaluations into one. Skeletons are computed by replacing every literal in
the policy AST with a positional placeholder; policies with identical
skeletons form a group. Each group is rewritten so literal position *j*
reads column ``c<j>`` of a fresh ``__consts_<k>`` table with one row per
member policy, and the constant columns are appended to GROUP BY so each
member's HAVING is judged on its own slice (exactly the paper's Example
4.6, generalized to any number of differing constants).

Only monotone policies are unified: for a non-monotone scalar HAVING such
as ``count(...) < k``, the original fires on an empty join (count 0) while
the unified form produces no group for that constants row — not
equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..sql import ast
from .monotonicity import is_monotone

_CONST_ALIAS = "__c"


@dataclass(frozen=True)
class _Placeholder(ast.Expr):
    """Stands in for the i-th literal when computing skeletons."""

    index: int


@dataclass
class UnifiedGroup:
    """One consolidated policy covering ``len(member_names)`` originals."""

    select: ast.Select
    table_name: str
    column_names: list[str]
    rows: list[tuple]
    member_names: list[str]


@dataclass
class UnificationResult:
    """Partition of the input policies into unified groups and leftovers."""

    groups: list[UnifiedGroup] = field(default_factory=list)
    #: (name, select) pairs that joined no group.
    singletons: list[tuple[str, ast.Select]] = field(default_factory=list)


def _skeleton_and_literals(
    select: ast.Select,
) -> tuple[ast.Select, list[ast.LiteralValue]]:
    """Replace literals with positional placeholders, collecting values.

    Traversal order is the deterministic pre-order of ``Node.walk`` as
    realized by ``transform``; two structurally identical policies visit
    literals in the same order, so positions line up.
    """
    literals: list[ast.LiteralValue] = []
    counter = iter(range(1 << 30))

    def replace(node: ast.Node) -> Optional[ast.Node]:
        if isinstance(node, ast.Literal):
            literals.append(node.value)
            return _Placeholder(next(counter))
        return None

    skeleton = ast.transform(select, replace)
    assert isinstance(skeleton, ast.Select)
    return skeleton, literals


def unify_policies(
    policies: Sequence[tuple[str, ast.Select]],
    existing_aliases: Optional[set[str]] = None,
) -> UnificationResult:
    """Group unifiable policies and build their consolidated rewrites."""
    result = UnificationResult()
    by_skeleton: dict[ast.Select, list[tuple[str, list[ast.LiteralValue]]]] = {}
    skeleton_order: list[ast.Select] = []
    skipped: list[tuple[str, ast.Select]] = []
    originals: dict[str, ast.Select] = {}

    for name, select in policies:
        originals[name] = select
        if not is_monotone(select):
            skipped.append((name, select))
            continue
        skeleton, literals = _skeleton_and_literals(select)
        if skeleton not in by_skeleton:
            skeleton_order.append(skeleton)
        by_skeleton.setdefault(skeleton, []).append((name, literals))

    result.singletons.extend(skipped)
    group_counter = 0
    for skeleton in skeleton_order:
        members = by_skeleton[skeleton]
        if len(members) < 2:
            name = members[0][0]
            result.singletons.append((name, originals[name]))
            continue
        group = _build_group(skeleton, members, group_counter)
        result.groups.append(group)
        group_counter += 1
    return result


def _build_group(
    skeleton: ast.Select,
    members: list[tuple[str, list[ast.LiteralValue]]],
    group_index: int,
) -> UnifiedGroup:
    literal_count = len(members[0][1])
    table_name = f"__consts_{group_index}"
    column_names = [f"c{i}" for i in range(literal_count)]

    def replace(node: ast.Node) -> Optional[ast.Node]:
        if isinstance(node, _Placeholder):
            return ast.ColumnRef(_CONST_ALIAS, f"c{node.index}")
        return None

    rewritten = ast.transform(skeleton, replace)
    assert isinstance(rewritten, ast.Select)

    const_cols = tuple(
        ast.ColumnRef(_CONST_ALIAS, column) for column in column_names
    )
    rewritten = rewritten.replace(
        from_items=rewritten.from_items
        + (ast.TableRef(table_name, _CONST_ALIAS),),
        group_by=rewritten.group_by + const_cols,
        distinct=True,
    )

    rows = [tuple(literals) for _, literals in members]
    return UnifiedGroup(
        select=rewritten,
        table_name=table_name,
        column_names=column_names,
        rows=rows,
        member_names=[name for name, _ in members],
    )
