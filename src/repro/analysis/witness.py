"""Log compaction: absolute-witness queries (§4.1.2, Lemmas 4.1–4.3).

For every policy π and every log relation occurrence ``Ri`` in it, we build
a *witness query* whose answer is a subset of ``Ri`` sufficient to evaluate
π now and at every future time. The log is compacted to the union of all
witnesses (Algorithm 2). Construction is purely syntactic:

- **Full queries** (policies with GROUP BY/HAVING, and FROM-subqueries):
  ``SELECT DISTINCT Ri.* FROM Ri, N(Ri), D1..Dq WHERE <kept preds>`` —
  a semi-join reduction against the timestamp-neighborhood N(Ri) and the
  database tables (Lemma 4.1).
- **Boolean policies** (no HAVING): ``SELECT DISTINCT ON (Ri.X) Ri.*``
  where X is every attribute of Ri used in a join predicate or a clock
  bound — one representative per X-group suffices (Lemma 4.2).
- **Clock predicates** are normalized to ``c.ts op bound``; ``>``/``>=``
  forms are dropped (they only relax in the future) and ``<``/``<=``/``=``
  forms become ``currenttime + 1 op bound`` (Lemma 4.3). Policies whose
  clock predicates don't fit the supported shapes opt out: their relations
  are marked *retain-all*, which is always sound.

Witness queries are stored as templates containing the
:data:`~repro.analysis.features.CURRENT_TIME_PARAM` sentinel and
instantiated with the live clock at compaction time. The *mark* phase runs
them with lineage tracking: the tids of the witness relation appearing in
any output row's lineage are exactly the tuples to retain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine import Database, Engine
from ..log import LogRegistry
from ..sql import ast
from .features import (
    CURRENT_TIME_PARAM,
    PolicyStructure,
    aliases_of,
    analyze_structure,
    qualifier_for,
    substitute_current_time,
)


@dataclass
class WitnessSet:
    """The compaction plan for one policy."""

    #: log relation name → witness query templates (one per occurrence).
    per_relation: dict[str, list[ast.Select]] = field(default_factory=dict)
    #: log relations whose tuples must all be retained (no compaction).
    retain_all: set[str] = field(default_factory=set)

    def relations(self) -> set[str]:
        return set(self.per_relation) | set(self.retain_all)

    def merge(self, other: "WitnessSet") -> None:
        for name, selects in other.per_relation.items():
            self.per_relation.setdefault(name, []).extend(selects)
        self.retain_all |= other.retain_all


def witness_queries(
    select: ast.Select,
    registry: LogRegistry,
    database: Optional[Database] = None,
) -> WitnessSet:
    """Build the witness set for one policy (Algorithm 2 for a single π)."""
    result = WitnessSet()
    _compact_block(select, registry, database, result, force_full=False)
    # Relations that are retain-all don't need witness queries as well.
    for name in result.retain_all:
        result.per_relation.pop(name, None)
    return result


def _compact_block(
    select: ast.Select,
    registry: LogRegistry,
    database: Optional[Database],
    result: WitnessSet,
    force_full: bool,
) -> None:
    structure = analyze_structure(select, registry, database)

    # Subqueries in FROM are compacted separately, as full queries
    # (Algorithm 2 line 3).
    for query in structure.subqueries.values():
        for block in _selects_of(query):
            _compact_block(block, registry, database, result, force_full=True)

    if not structure.log_occurrences:
        return

    if structure.clock_predicates is None:
        # Unsupported clock shape: retain everything this block touches.
        result.retain_all |= structure.log_relation_names()
        return

    boolean = (
        not force_full
        and select.having is None
        and select.distinct
        and not select.group_by
    )

    clock_indexes = {
        predicate.conjunct_index for predicate in structure.clock_predicates
    }

    for alias in structure.log_occurrences:
        witness = _witness_for_occurrence(
            alias, select, structure, clock_indexes, boolean
        )
        relation = structure.log_occurrences[alias]
        result.per_relation.setdefault(relation, []).append(witness)


def _selects_of(query: ast.Query) -> list[ast.Select]:
    if isinstance(query, ast.SetOp):
        return _selects_of(query.left) + _selects_of(query.right)
    assert isinstance(query, ast.Select)
    return [query]


def _witness_for_occurrence(
    alias: str,
    select: ast.Select,
    structure: PolicyStructure,
    clock_indexes: set[int],
    boolean: bool,
) -> ast.Select:
    kept_aliases = {alias} | structure.neighborhood(alias)
    kept_aliases |= set(structure.db_tables)

    from_items: list[ast.FromItem] = []
    for item in select.from_items:
        name = item.binding_name().lower()
        if name in kept_aliases and isinstance(item, ast.TableRef):
            from_items.append(item)

    conjuncts: list[ast.Expr] = []
    for index, conjunct in enumerate(structure.conjuncts):
        if index in clock_indexes:
            continue
        referenced = aliases_of(conjunct, structure)
        if referenced and referenced <= kept_aliases:
            conjuncts.append(conjunct)

    # Clock predicates (Lemma 4.3): drop the future-relaxing ones, pin the
    # window-limiting ones to currenttime + 1.
    assert structure.clock_predicates is not None
    current_plus_one = ast.BinaryOp("+", CURRENT_TIME_PARAM, ast.Literal(1))
    for predicate in structure.clock_predicates:
        ops = ["<=", ">="] if predicate.op == "=" else [predicate.op]
        for op in ops:
            if op in (">", ">="):
                continue
            bound_aliases = aliases_of(predicate.bound, structure)
            if not bound_aliases <= kept_aliases:
                continue  # bound mentions dropped relations: relax it away
            conjuncts.append(ast.BinaryOp(op, current_plus_one, predicate.bound))

    where = ast.conjoin(conjuncts)
    items = (ast.SelectItem(ast.Star(alias)),)

    if not boolean:
        return ast.Select(
            items=items,
            from_items=tuple(from_items),
            where=where,
            distinct=True,
        )

    join_attrs = _join_attributes(alias, structure)
    if not join_attrs:
        # Any single satisfying tuple is a witness.
        return ast.Select(
            items=items, from_items=tuple(from_items), where=where, limit=1
        )
    distinct_on = tuple(
        ast.ColumnRef(alias, attr) for attr in sorted(join_attrs)
    )
    return ast.Select(
        items=items,
        from_items=tuple(from_items),
        where=where,
        distinct=True,
        distinct_on=distinct_on,
    )


def _join_attributes(alias: str, structure: PolicyStructure) -> set[str]:
    """X of Lemma 4.2: attributes of ``alias`` in any predicate that also
    references another alias, the clock, or something unresolvable.

    Computed over *all* of the policy's conjuncts (including ones the
    witness drops): a representative must be swappable into every context
    the original tuple appeared in, now or in the future.
    """
    attrs: set[str] = set()
    for conjunct in structure.conjuncts:
        own_refs = [
            ref
            for ref in ast.column_refs(conjunct)
            if qualifier_for(ref, structure) == alias
        ]
        if not own_refs:
            continue
        others = aliases_of(conjunct, structure) - {alias}
        if others:
            attrs.update(ref.name for ref in own_refs)
    return attrs


# ---------------------------------------------------------------------------
# Evaluation: the mark phase
# ---------------------------------------------------------------------------


def evaluate_witness_marks(
    witness: WitnessSet,
    engine: Engine,
    now: int,
    marks: Optional[dict[str, set[int]]] = None,
) -> dict[str, set[int]]:
    """Run the witness queries and collect the tids to retain.

    Lineage does the tid bookkeeping: each witness query selects ``Ri.*``,
    and the lineage entries of its output rows tagged with Ri's table name
    are precisely the witness tuples (for self-joins this may retain tuples
    from both occurrences, a sound over-approximation).
    """
    if marks is None:
        marks = {}
    for relation, selects in witness.per_relation.items():
        collected = marks.setdefault(relation, set())
        for template in selects:
            query = substitute_current_time(template, now)
            result = engine.execute(query, lineage=True)
            assert result.lineages is not None
            for lineage in result.lineages:
                for table, tid in lineage:
                    if table == relation:
                        collected.add(tid)
    for relation in witness.retain_all:
        marks.setdefault(relation, set()).update(
            engine.database.table(relation).tids()
        )
    return marks


def partial_witness_probe(
    template: ast.Select,
    available: set[str],
    structure_registry: LogRegistry,
) -> Optional[ast.Select]:
    """Preemptive log compaction (§4.3): an emptiness probe over the
    already-generated logs.

    Drops FROM atoms of log relations outside ``available`` (and conjuncts
    referencing them), yielding a relaxation LCQ' of the witness query: if
    LCQ' is empty then the witness is empty and the missing log increments
    need not be generated. Returns None when nothing would be dropped (the
    probe is pointless — just run the witness)."""
    dropped_aliases: set[str] = set()
    kept_items: list[ast.FromItem] = []
    for item in template.from_items:
        if (
            isinstance(item, ast.TableRef)
            and structure_registry.is_log_relation(item.name)
            and item.name.lower() not in available
        ):
            dropped_aliases.add(item.binding_name().lower())
        else:
            kept_items.append(item)
    if not dropped_aliases:
        return None
    if not kept_items:
        return None  # everything dropped: probe cannot say anything

    def references_dropped(expr: ast.Expr) -> bool:
        return any(
            ref.table is not None and ref.table.lower() in dropped_aliases
            for ref in ast.column_refs(expr)
        )

    conjuncts = [
        conjunct
        for conjunct in ast.conjuncts(template.where)
        if not references_dropped(conjunct)
    ]
    return ast.Select(
        items=(ast.SelectItem(ast.Literal(1)),),
        from_items=tuple(kept_items),
        where=ast.conjoin(conjuncts),
        limit=1,
    )
