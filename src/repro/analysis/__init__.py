"""Static policy analysis: the algorithms of §4 of the paper."""

from .features import (
    CURRENT_TIME_PARAM,
    ClockPredicate,
    PolicyStructure,
    aliases_of,
    analyze_structure,
    qualifier_for,
    referenced_log_relations,
    substitute_current_time,
)
from .containment import cq_implies, screen_is_sound
from .monotonicity import can_interleave, is_monotone
from .partial import partial_chain, partial_policy
from .time_independence import is_time_independent, rewrite_time_independent
from .unification import UnificationResult, UnifiedGroup, unify_policies
from .witness import (
    WitnessSet,
    evaluate_witness_marks,
    partial_witness_probe,
    witness_queries,
)

__all__ = [
    "CURRENT_TIME_PARAM",
    "ClockPredicate",
    "PolicyStructure",
    "aliases_of",
    "analyze_structure",
    "qualifier_for",
    "referenced_log_relations",
    "substitute_current_time",
    "cq_implies",
    "screen_is_sound",
    "can_interleave",
    "is_monotone",
    "partial_chain",
    "partial_policy",
    "is_time_independent",
    "rewrite_time_independent",
    "UnificationResult",
    "UnifiedGroup",
    "unify_policies",
    "WitnessSet",
    "evaluate_witness_marks",
    "partial_witness_probe",
    "witness_queries",
]
