"""Monotonicity of policies (§4.2.1).

A policy query π is monotone when growing the log/database can only grow
its answer: ``L ⊆ L' ∧ D ⊆ D' ⇒ π(L, D) ⊆ π(L', D')``. Interleaved
evaluation (Lemma 4.4) relies on monotonicity, and on the stronger fact
``π ⇒ π_S`` that the partial-policy builder guarantees.

Classification, following the paper:

- select-project-join-union queries (any WHERE filters) are monotone;
- HAVING conditions of the form ``count([distinct] x) > k`` (or ``>=``)
  are monotone; so are ``max(x) > k`` and ``sum/count`` over growing data;
- ``count(...) < k``, equalities on aggregates, and EXCEPT are not.
"""

from __future__ import annotations

from ..sql import ast
from ..engine.expressions import contains_aggregate, is_aggregate_call

#: Aggregates that can only grow as tuples are added.
_GROWING_AGGREGATES = frozenset({"count", "max"})


def is_monotone(query: ast.Query) -> bool:
    """Decide monotonicity of a policy query."""
    if isinstance(query, ast.SetOp):
        if query.op in ("except", "intersect"):
            # EXCEPT is anti-monotone in its right input; INTERSECT is
            # monotone but rare in policies — treat both conservatively.
            return query.op == "intersect" and is_monotone(
                query.left
            ) and is_monotone(query.right)
        return is_monotone(query.left) and is_monotone(query.right)
    assert isinstance(query, ast.Select)

    for item in query.from_items:
        if isinstance(item, ast.SubqueryRef) and not is_monotone(item.query):
            return False

    # Aggregates in the select list don't affect emptiness monotonicity of
    # a Boolean policy; the HAVING clause is what matters.
    if query.having is None:
        return True
    return all(
        _is_monotone_having_conjunct(conjunct)
        for conjunct in ast.conjuncts(query.having)
    )


def _is_monotone_having_conjunct(conjunct: ast.Expr) -> bool:
    """One HAVING conjunct; no aggregate → plain filter → monotone."""
    if not contains_aggregate(conjunct):
        return True
    if not isinstance(conjunct, ast.BinaryOp):
        return False
    left_agg = contains_aggregate(conjunct.left)
    right_agg = contains_aggregate(conjunct.right)
    if left_agg and right_agg:
        return False
    if left_agg:
        aggregate, op = conjunct.left, conjunct.op
    else:
        aggregate, op = conjunct.right, _flip(conjunct.op)
    # Require the aggregate side to be a bare growing aggregate compared
    # with > or >= against an aggregate-free bound.
    if not (is_aggregate_call(aggregate) and aggregate.name in _GROWING_AGGREGATES):
        return False
    return op in (">", ">=")


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}[op]


def can_interleave(query: ast.Query) -> bool:
    """Whether Algorithm 3 may evaluate this policy via partials.

    Monotone policies always qualify. A non-monotone policy with GROUP BY
    still qualifies with HAVING-free partials: if the full policy fires,
    some group exists, so every partial (a projection of its rows) is
    non-empty — the π ⇒ π_S implication holds. Without GROUP BY, a
    non-monotone scalar HAVING can fire on an *empty* join (count = 0),
    which no HAVING-free partial can witness, so those are excluded.
    """
    if is_monotone(query):
        return True
    if isinstance(query, ast.Select):
        return bool(query.group_by)
    return False
