"""Partial policies for interleaved evaluation (§4.2.1, Lemma 4.4).

For a subset S of the log relations, the partial policy π_S drops every
reference to log relations outside S. For monotone policies, π ⇒ π_S: if
π_S comes back empty, π is guaranteed satisfied and evaluation stops early
(Algorithm 3). HAVING survives into a partial only when the implication
provably holds — every aggregate is a ``COUNT(DISTINCT x)`` over surviving
columns compared with ``>``/``>=`` (the case the paper's Lemma 4.4 covers
via key-joins; distinctness makes the count immune to join fan-out) —
otherwise HAVING is dropped, which only enlarges π_S and stays sound.
"""

from __future__ import annotations

from typing import Optional

from ..engine import Database
from ..log import LogRegistry
from ..sql import ast
from ..engine.expressions import contains_aggregate, is_aggregate_call
from .features import (
    PolicyStructure,
    aliases_of,
    analyze_structure,
    referenced_log_relations,
)


def partial_policy(
    select: ast.Select,
    keep_logs: set[str],
    registry: LogRegistry,
    database: Optional[Database] = None,
    keep_having: bool = True,
) -> Optional[ast.Select]:
    """Build π_S for ``S = keep_logs``.

    Returns the original AST when nothing is removed, and ``None`` when the
    partial degenerates (no FROM items survive) and is useless as an early
    check.

    ``keep_having=False`` forces HAVING-free partials — used for the
    non-monotone-with-GROUP-BY policies that interleave on their
    conjunctive core only (see
    :func:`repro.analysis.monotonicity.can_interleave`).
    """
    structure = analyze_structure(select, registry, database)

    removed_aliases: set[str] = set()
    for alias, relation in structure.log_occurrences.items():
        if relation not in keep_logs:
            removed_aliases.add(alias)
    for alias, query in structure.subqueries.items():
        if referenced_log_relations(query, registry) - keep_logs:
            removed_aliases.add(alias)

    if not removed_aliases:
        if keep_having or select.having is None:
            return select
        return _drop_having(select, structure, set())

    from_items = tuple(
        item
        for item in select.from_items
        if item.binding_name().lower() not in removed_aliases
    )
    if not from_items:
        return None

    def survives(expr: ast.Expr) -> bool:
        return not (aliases_of(expr, structure) & (removed_aliases | {"?"}))

    where = ast.conjoin(
        [conjunct for conjunct in structure.conjuncts if survives(conjunct)]
    )
    group_by = tuple(expr for expr in select.group_by if survives(expr))

    having = select.having
    if having is not None:
        if not keep_having or not survives(having):
            having = None
        elif contains_aggregate(having) and not _having_implication_holds(
            having, structure, removed_aliases
        ):
            having = None
    if having is None and not group_by:
        group_by = ()

    items = tuple(
        item if survives(item.expr) else ast.SelectItem(ast.Literal(1))
        for item in select.items
    )

    return select.replace(
        items=items,
        from_items=from_items,
        where=where,
        group_by=group_by,
        having=having,
    )


def _drop_having(
    select: ast.Select, structure: PolicyStructure, removed: set[str]
) -> ast.Select:
    return select.replace(having=None)


def _having_implication_holds(
    having: ast.Expr, structure: PolicyStructure, removed_aliases: set[str]
) -> bool:
    """Whether π ⇒ π_S still holds with this HAVING kept in π_S.

    True when every aggregate-bearing conjunct is
    ``COUNT(DISTINCT col) > k`` (or >=) with the counted column surviving:
    the distinct count over the relaxed (superset) tuple set can only be
    larger, so the threshold still holds whenever π fired.
    """
    for conjunct in ast.conjuncts(having):
        if not contains_aggregate(conjunct):
            # A plain filter on group keys; survives() already checked refs.
            continue
        if not isinstance(conjunct, ast.BinaryOp):
            return False
        if contains_aggregate(conjunct.left) and contains_aggregate(
            conjunct.right
        ):
            return False
        if contains_aggregate(conjunct.left):
            aggregate, op = conjunct.left, conjunct.op
        else:
            aggregate = conjunct.right
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
                conjunct.op, conjunct.op
            )
        if op not in (">", ">="):
            return False
        if not (
            is_aggregate_call(aggregate)
            and aggregate.name == "count"
            and aggregate.distinct
            and len(aggregate.args) == 1
        ):
            return False
        arg_aliases = aliases_of(aggregate.args[0], structure)
        if arg_aliases & (removed_aliases | {"?"}):
            return False
    return True


def partial_chain(
    select: ast.Select,
    registry: LogRegistry,
    database: Optional[Database] = None,
    keep_having: bool = True,
) -> list[tuple[frozenset, Optional[ast.Select]]]:
    """The sequence of partials as S grows in registry order.

    Returns ``[(S_0, π_S0), (S_1, π_S1), ...]`` for S = ∅, then S growing
    one log relation at a time (Users → Schema → Provenance by default).
    Consecutive duplicates are collapsed to the *earliest* stage — the
    interleaved evaluator skips stages whose partial didn't change. The
    final entry always carries the full policy.
    """
    order = registry.names()
    chain: list[tuple[frozenset, Optional[ast.Select]]] = []
    previous: Optional[ast.Select] = None
    seen_first = False
    keep: set[str] = set()

    def push(stage: frozenset, partial: Optional[ast.Select]) -> None:
        nonlocal previous, seen_first
        if seen_first and partial == previous:
            return
        chain.append((stage, partial))
        previous = partial
        seen_first = True

    push(
        frozenset(),
        partial_policy(select, set(), registry, database, keep_having),
    )
    for name in order:
        keep.add(name)
        is_last = len(keep) == len(order)
        push(
            frozenset(keep),
            partial_policy(
                select,
                set(keep),
                registry,
                database,
                keep_having=True if is_last else keep_having,
            ),
        )
    return chain
