"""Time-independent policies (§4.1.1).

A policy is *time-independent* when it can be checked on the log increment
alone: ``π(L_t) = π(L_past) ∪ π(L_present)``. The paper's syntactic
criterion: (a) the timestamp attributes of all log relations are joined
(one ts-equivalence class), and (b) if the policy aggregates, the GROUP BY
includes the timestamp. Such a policy is rewritten to ``π_ind`` by pinning
every timestamp to the current clock, which both restricts evaluation to
the increment and lets log compaction discard the entire log.
"""

from __future__ import annotations

from typing import Optional

from ..engine import Database
from ..log import LogRegistry
from ..log.store import CLOCK_TABLE
from ..sql import ast
from .features import (
    PolicyStructure,
    analyze_structure,
    referenced_log_relations,
)
from ..engine.expressions import contains_aggregate


def is_time_independent(
    select: ast.Select,
    registry: LogRegistry,
    database: Optional[Database] = None,
) -> bool:
    """Apply the paper's syntactic criterion to one policy."""
    # Subqueries referencing log relations would need their own analysis
    # plus a ts join with the outer block; we conservatively refuse them.
    for query in _from_subqueries(select):
        if referenced_log_relations(query, registry):
            return False

    structure = analyze_structure(select, registry, database)
    occurrences = list(structure.log_occurrences)
    if not occurrences:
        # No log relations at all: trivially depends only on the present.
        return True

    # (a) all log timestamps joined into a single equivalence class.
    component = structure.ts_components.get(occurrences[0], {occurrences[0]})
    if set(occurrences) != component:
        return False

    # (b) aggregates require the timestamp among the GROUP BY keys.
    if _has_aggregates(select):
        if not any(
            _is_log_ts(expr, structure) for expr in select.group_by
        ):
            return False
    return True


def rewrite_time_independent(
    select: ast.Select,
    registry: LogRegistry,
    database: Optional[Database] = None,
) -> ast.Select:
    """Produce ``π_ind``: pin every log occurrence's ts to the clock.

    Adds ``Clock <fresh>`` to FROM (reusing an existing clock alias when
    the policy already joins the clock) and conjoins ``a.ts = c.ts`` for
    every log occurrence ``a``.
    """
    structure = analyze_structure(select, registry, database)
    if not structure.log_occurrences:
        return select

    if structure.clock_aliases:
        clock_alias = sorted(structure.clock_aliases)[0]
        from_items = select.from_items
    else:
        clock_alias = _fresh_alias("c", structure)
        from_items = select.from_items + (
            ast.TableRef(CLOCK_TABLE, clock_alias),
        )

    new_conjuncts = [
        ast.eq(ast.col(alias, "ts"), ast.col(clock_alias, "ts"))
        for alias in sorted(structure.log_occurrences)
    ]
    where = ast.conjoin(ast.conjuncts(select.where) + new_conjuncts)
    return select.replace(from_items=from_items, where=where)


def _from_subqueries(select: ast.Select) -> list[ast.Query]:
    return [
        item.query
        for item in select.from_items
        if isinstance(item, ast.SubqueryRef)
    ]


def _has_aggregates(select: ast.Select) -> bool:
    exprs: list[ast.Expr] = [
        item.expr for item in select.items if not isinstance(item.expr, ast.Star)
    ]
    if select.having is not None:
        exprs.append(select.having)
    return any(contains_aggregate(expr) for expr in exprs)


def _is_log_ts(expr: ast.Expr, structure: PolicyStructure) -> bool:
    from .features import qualifier_for

    return (
        isinstance(expr, ast.ColumnRef)
        and expr.name == "ts"
        and qualifier_for(expr, structure) in structure.log_occurrences
    )


def _fresh_alias(base: str, structure: PolicyStructure) -> str:
    if base not in structure.alias_columns:
        return base
    suffix = 0
    while f"{base}{suffix}" in structure.alias_columns:
        suffix += 1
    return f"{base}{suffix}"
