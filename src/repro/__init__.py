"""repro — a from-scratch reproduction of DataLawyer (SIGMOD 2015).

DataLawyer enforces data-use policies at query time: policies are SQL
queries over a usage log plus the database that return rows exactly when a
term-of-use is violated. This package provides:

- :mod:`repro.engine` — an in-memory relational engine with lineage;
- :mod:`repro.log` — the usage log (Users/Schema/Provenance + Clock);
- :mod:`repro.analysis` — the paper's §4 optimizations as AST rewrites;
- :mod:`repro.core` — the enforcement pipeline (NoOpt and DataLawyer);
- :mod:`repro.workloads` — the MIMIC-II-like experimental workload.

Quickstart::

    from repro import Database, Policy, make_datalawyer

    db = Database()
    db.load_table("navteq", ["id", "lat", "lon"], [(1, 47.6, -122.3)])
    db.load_table("own_data", ["id", "name"], [(1, "hq")])

    no_joins = Policy.from_sql(
        "P1",
        '''SELECT DISTINCT 'No external joins allowed'
           FROM schema p1, schema p2
           WHERE p1.ts = p2.ts AND p1.irid = 'navteq'
             AND p2.irid <> 'navteq' ''',
    )
    enforcer = make_datalawyer(db, [no_joins])
    decision = enforcer.submit("SELECT * FROM navteq", uid=1)       # allowed
    decision = enforcer.submit(
        "SELECT n.id FROM navteq n, own_data o WHERE n.id = o.id", uid=1
    )  # rejected with P1's message
"""

from .core import (
    Decision,
    Enforcer,
    EnforcerOptions,
    MetricsLog,
    Policy,
    QueryMetrics,
    Violation,
    make_datalawyer,
    make_noopt,
)
from .engine import Database, Engine, Result, Table
from .errors import (
    BindError,
    CatalogError,
    EngineError,
    ExecutionError,
    LexError,
    ParseError,
    PolicyError,
    PolicySyntaxError,
    ReproError,
    SqlError,
    UnknownLogRelationError,
)
from .log import (
    LogFunction,
    LogicalClock,
    LogRegistry,
    SimulatedClock,
    standard_registry,
)

__version__ = "1.0.0"

__all__ = [
    "Decision",
    "Enforcer",
    "EnforcerOptions",
    "MetricsLog",
    "Policy",
    "QueryMetrics",
    "Violation",
    "make_datalawyer",
    "make_noopt",
    "Database",
    "Engine",
    "Result",
    "Table",
    "LogFunction",
    "LogicalClock",
    "LogRegistry",
    "SimulatedClock",
    "standard_registry",
    "ReproError",
    "SqlError",
    "LexError",
    "ParseError",
    "EngineError",
    "CatalogError",
    "BindError",
    "ExecutionError",
    "PolicyError",
    "PolicySyntaxError",
    "UnknownLogRelationError",
    "__version__",
]
