"""Prometheus text exposition: metric families, histograms, a registry.

The service's counters already live in lock-free per-shard structures
(:class:`~repro.service.metrics.ShardCounters`, the WAL's append/fsync
tallies); what this module adds is the *export* side — the 0.0.4 text
format that ``GET /metrics`` serves::

    # HELP repro_shard_admitted_total Queries admitted to the shard queue.
    # TYPE repro_shard_admitted_total counter
    repro_shard_admitted_total{shard="0"} 1027

Two pieces:

- :class:`Histogram` — a thread-safe bucketed accumulator used at record
  time (per-shard check latency, per-policy eval latency);
- :class:`MetricFamily` / :class:`Registry` — scrape-time assembly: a
  registry holds collector callables that snapshot current state into
  families, so rendering never blocks a shard lock.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable, Optional, Sequence

#: Default latency buckets (seconds): sub-millisecond through seconds,
#: sized for an in-process policy check rather than a network service.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

VALID_KINDS = ("counter", "gauge", "histogram")


class Histogram:
    """A thread-safe cumulative-bucket histogram accumulator."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.bounds = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * len(self.bounds)  # per-bucket (non-cumulative)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> "HistogramSnapshot":
        with self._lock:
            counts = list(self._counts)
            total_sum = self._sum
            count = self._count
        cumulative = []
        running = 0
        for value in counts:
            running += value
            cumulative.append(running)
        return HistogramSnapshot(
            bounds=self.bounds,
            cumulative=tuple(cumulative),
            sum=total_sum,
            count=count,
        )


class HistogramSnapshot:
    """An immutable view of a :class:`Histogram` at one instant."""

    __slots__ = ("bounds", "cumulative", "sum", "count")

    def __init__(self, bounds, cumulative, sum, count):  # noqa: A002
        self.bounds = bounds
        self.cumulative = cumulative
        self.sum = sum
        self.count = count

    def as_dict(self) -> dict:
        """A JSON-safe view (process shards ship snapshots over IPC)."""
        return {
            "bounds": list(self.bounds),
            "cumulative": list(self.cumulative),
            "sum": self.sum,
            "count": self.count,
        }

    @staticmethod
    def from_dict(payload: dict) -> "HistogramSnapshot":
        return HistogramSnapshot(
            bounds=tuple(payload["bounds"]),
            cumulative=tuple(payload["cumulative"]),
            sum=payload["sum"],
            count=payload["count"],
        )

    @staticmethod
    def merge(snapshots: "Sequence[HistogramSnapshot]") -> "HistogramSnapshot":
        """Sum snapshots with identical bounds (cross-shard aggregation)."""
        first = snapshots[0]
        cumulative = [0] * len(first.bounds)
        total_sum = 0.0
        count = 0
        for snap in snapshots:
            if snap.bounds != first.bounds:
                raise ValueError("cannot merge histograms with different buckets")
            for index, value in enumerate(snap.cumulative):
                cumulative[index] += value
            total_sum += snap.sum
            count += snap.count
        return HistogramSnapshot(
            bounds=first.bounds,
            cumulative=tuple(cumulative),
            sum=total_sum,
            count=count,
        )


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def format_labels(labels: "Optional[dict]") -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


class MetricFamily:
    """One named metric with HELP/TYPE metadata and its samples."""

    def __init__(self, name: str, kind: str, help_text: str):
        if kind not in VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        #: ``(suffix, labels, value)`` triples; suffix is "" except for
        #: histogram series (``_bucket``/``_sum``/``_count``).
        self.samples: "list[tuple[str, Optional[dict], float]]" = []

    def add(self, labels: "Optional[dict]", value: float) -> "MetricFamily":
        self.samples.append(("", labels, value))
        return self

    def add_histogram(
        self, labels: "Optional[dict]", snapshot: HistogramSnapshot
    ) -> "MetricFamily":
        if self.kind != "histogram":
            raise ValueError(f"{self.name} is a {self.kind}, not a histogram")
        for bound, cumulative in zip(snapshot.bounds, snapshot.cumulative):
            bucket_labels = dict(labels or {})
            bucket_labels["le"] = _format_value(float(bound))
            self.samples.append(("_bucket", bucket_labels, cumulative))
        inf_labels = dict(labels or {})
        inf_labels["le"] = "+Inf"
        self.samples.append(("_bucket", inf_labels, snapshot.count))
        self.samples.append(("_sum", labels, snapshot.sum))
        self.samples.append(("_count", labels, snapshot.count))
        return self

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples:
            lines.append(
                f"{self.name}{suffix}{format_labels(labels)} "
                f"{_format_value(value)}"
            )
        return "\n".join(lines)


Collector = Callable[[], Iterable[MetricFamily]]


class Registry:
    """Scrape-time metric assembly from registered collectors."""

    def __init__(self) -> None:
        self._collectors: "list[Collector]" = []
        self._lock = threading.Lock()

    def register(self, collector: Collector) -> None:
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> "list[MetricFamily]":
        with self._lock:
            collectors = list(self._collectors)
        families: "list[MetricFamily]" = []
        for collector in collectors:
            families.extend(collector())
        return families

    def render(self) -> str:
        body = "\n".join(family.render() for family in self.collect())
        return body + "\n" if body else ""


#: The content type Prometheus expects for the 0.0.4 text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
