"""repro.obs — tracing and metrics export.

The paper's evaluation is a per-query cost decomposition (query /
tracking / policy-eval / compaction); this package makes that
decomposition visible per *request* in the running service:

- :mod:`repro.obs.trace` — a lightweight span tree per submitted query,
  propagated shard → :meth:`~repro.core.Enforcer.submit` → per-policy
  evaluation → engine operators. ``Decision.span`` carries the root.
- :mod:`repro.obs.prom` — Prometheus text-exposition primitives
  (histogram accumulators, metric families, a scrape registry).
- :mod:`repro.obs.export` — the service collector behind
  ``GET /metrics``.
"""

from .prom import (
    CONTENT_TYPE,
    DEFAULT_BUCKETS,
    Histogram,
    HistogramSnapshot,
    MetricFamily,
    Registry,
)
from .trace import (
    DEFAULT_MAX_CHILDREN,
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_SPANS,
    Span,
    TraceContext,
)

__all__ = [
    "Span",
    "TraceContext",
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_MAX_CHILDREN",
    "DEFAULT_MAX_SPANS",
    "Histogram",
    "HistogramSnapshot",
    "MetricFamily",
    "Registry",
    "DEFAULT_BUCKETS",
    "CONTENT_TYPE",
]


def build_service_registry(service) -> Registry:
    """See :func:`repro.obs.export.build_service_registry`."""
    from .export import build_service_registry as _build

    return _build(service)


__all__.append("build_service_registry")
