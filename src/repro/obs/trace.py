"""Per-query trace spans.

One :class:`TraceContext` is created per submitted query; it owns a tree
of :class:`Span` nodes mirroring the enforcement pipeline: the root is
the submit, its children are the phase buckets the paper reports
(``log:<relation>``, ``policy:<name>``, ``compact_*``, ``query``), and
the ``query`` span's children are the engine's physical operators
(rows out + inclusive wall time per node — the data behind
``EXPLAIN ANALYZE``).

Spans are deliberately cheap: a name, accumulated seconds, a small
counter dict, and children. Three caps keep a pathological plan or
policy set from turning tracing into the hot path itself:

- ``max_depth`` — spans nested deeper are dropped (parents count them
  in ``dropped``);
- ``max_children`` — extra children of one span are dropped;
- ``max_spans`` — a whole-trace budget.

A dropped span never breaks the tree shape: its would-be descendants are
dropped with it, and every drop is tallied on the nearest surviving
ancestor so the truncation is visible in the dump.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

DEFAULT_MAX_DEPTH = 12
DEFAULT_MAX_CHILDREN = 64
DEFAULT_MAX_SPANS = 512


@dataclass
class Span:
    """One timed node in a query's trace tree."""

    name: str
    seconds: float = 0.0
    counters: dict = field(default_factory=dict)
    children: "list[Span]" = field(default_factory=list)
    #: Children (and their subtrees) not recorded because a cap was hit.
    dropped: int = 0
    #: Nesting depth (root = 0); used to enforce ``max_depth``.
    depth: int = 0

    def add_count(self, counter: str, value: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + value

    def child(self, name: str) -> "Optional[Span]":
        """The first direct child with this name, if any."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def walk(self) -> "Iterator[Span]":
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def render(self) -> str:
        """The tree as indented text (the slow-query-log dump format)."""
        lines: "list[str]" = []
        self._render(lines, 0)
        return "\n".join(lines)

    def _render(self, lines: "list[str]", indent: int) -> None:
        extras = "".join(
            f" {key}={value}" for key, value in sorted(self.counters.items())
        )
        if self.dropped:
            extras += f" dropped={self.dropped}"
        lines.append(
            f"{'  ' * indent}{self.name} "
            f"time={self.seconds * 1000:.3f}ms{extras}"
        )
        for child in self.children:
            child._render(lines, indent + 1)


class TraceContext:
    """The span tree of one submitted query plus the open-span stack.

    Not thread-safe: one context belongs to one query, which runs on one
    shard worker at a time.
    """

    def __init__(
        self,
        name: str,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_children: int = DEFAULT_MAX_CHILDREN,
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        self.root = Span(name)
        self.max_depth = max_depth
        self.max_children = max_children
        self.max_spans = max_spans
        self._spans = 1
        #: Open spans; ``None`` entries mark dropped (untracked) frames.
        self._stack: "list[Optional[Span]]" = [self.root]
        self._started = time.perf_counter()
        self._finished = False

    @property
    def current(self) -> "Optional[Span]":
        """The innermost open span (None inside a dropped frame)."""
        return self._stack[-1]

    # -- building the tree -------------------------------------------------

    def attach(
        self, parent: "Optional[Span]", name: str, merge: bool = False
    ) -> "Optional[Span]":
        """A child span under ``parent``, or None when a cap drops it.

        With ``merge``, an existing child of the same name is reused and
        accumulates — the mechanism behind "one span per policy" even
        when interleaved evaluation touches a policy at several stages.
        """
        if parent is None:
            return None
        if merge:
            existing = parent.child(name)
            if existing is not None:
                return existing
        if (
            parent.depth + 1 >= self.max_depth
            or len(parent.children) >= self.max_children
            or self._spans >= self.max_spans
        ):
            parent.dropped += 1
            return None
        span = Span(name, depth=parent.depth + 1)
        parent.children.append(span)
        self._spans += 1
        return span

    def push(self, name: str, merge: bool = False) -> "Optional[Span]":
        """Open a span under the current one; always balanced by pop()."""
        span = self.attach(self.current, name, merge=merge)
        self._stack.append(span)
        return span

    def pop(self, span: "Optional[Span]", seconds: float) -> None:
        self._stack.pop()
        if span is not None:
            span.seconds += seconds

    def record(
        self, name: str, seconds: float, merge: bool = True
    ) -> "Optional[Span]":
        """Attach a pre-measured leaf under the current span."""
        span = self.attach(self.current, name, merge=merge)
        if span is not None:
            span.seconds += seconds
        return span

    def finish(self) -> Span:
        """Close the root span (idempotent) and return it."""
        if not self._finished:
            self.root.seconds = time.perf_counter() - self._started
            self._finished = True
        return self.root
