"""The service's Prometheus surface: collectors over shard state.

:func:`build_service_registry` wires a
:class:`~repro.obs.prom.Registry` to one
:class:`~repro.service.ShardedEnforcerService`. Collection is
scrape-time and lock-free in the same sense as ``GET /stats``: it reads
each shard's counter snapshot (tiny counter mutex, never the shard
lock), the queue sizes, and the WAL's append/fsync tallies.

Metric names and labels (all prefixed ``repro_``):

====================================  =========  ==========================
``repro_epoch``                       gauge      policy-broadcast epoch
``repro_shards``                      gauge      configured shard count
``repro_shard_admitted_total``        counter    ``{shard}``
``repro_shard_rejected_total``        counter    ``{shard}`` (backpressure)
``repro_shard_completed_total``       counter    ``{shard,outcome}``
``repro_shard_queue_depth``           gauge      ``{shard}``
``repro_shard_queue_capacity``        gauge      ``{shard}``
``repro_shard_busy_workers``          gauge      ``{shard}``
``repro_slow_queries_total``          counter    ``{shard}``
``repro_check_seconds``               histogram  ``{shard}`` enqueue→done
``repro_queue_wait_seconds``          histogram  ``{shard}``
``repro_batch_size``                  histogram  ``{shard}`` per wakeup
``repro_decision_cache_hits_total``   counter    ``{shard}``
``repro_decision_cache_misses_total``  counter   ``{shard}``
``repro_decision_cache_invalidations_total``  counter  ``{shard}``
``repro_decision_cache_entries``      gauge      ``{shard}``
``repro_incremental_hits_total``      counter    ``{shard}``
``repro_incremental_fallbacks_total``  counter   ``{shard}``
``repro_incremental_folds_total``     counter    ``{shard}``
``repro_incremental_state_entries``   gauge      ``{shard}``
``repro_plan_cache_hits_total``       counter    ``{shard}``
``repro_plan_cache_misses_total``     counter    ``{shard}``
``repro_join_build_cache_hits_total``  counter   ``{shard}``
``repro_join_build_cache_misses_total``  counter  ``{shard}``
``repro_vector_batches_total``        counter    ``{shard}``
``repro_vector_rows_total``           counter    ``{shard}``
``repro_dag_shared_nodes``            gauge      ``{shard}`` merged subtrees
``repro_dag_saved_execs_total``       counter    ``{shard}`` memo replays
``repro_policy_eval_seconds``         histogram  ``{shard,policy}``
``repro_policy_violations_total``     counter    ``{shard,policy}``
``repro_phase_seconds_total``         counter    ``{shard,phase}``
``repro_wal_appends_total``           counter    ``{shard}``
``repro_wal_fsyncs_total``            counter    ``{shard}``
``repro_wal_bytes``                   gauge      ``{shard}``
``repro_wal_last_seq``                gauge      ``{shard}``
``repro_process_alive``               gauge      ``{shard}`` worker up?
``repro_process_restarts_total``      counter    ``{shard}`` respawns
``repro_process_inflight``            gauge      ``{shard}`` window usage
``repro_global_checks_total``         counter    ``{mode}`` async/strict
``repro_global_denials_total``        counter    ``{mode}`` tier denials
``repro_global_reservations_total``   counter    strict reservations opened
``repro_global_reservations_active``  gauge      reservations in flight
``repro_global_delta_frames_total``   counter    shard delta frames folded
``repro_global_folds_total``          counter    aggregator fold passes
``repro_global_delta_lag``            gauge      frames queued, not folded
``repro_global_staleness_seconds``    gauge      age of the oldest unfolded
                                                 delta (0 when caught up)
``repro_global_policy_entries``       gauge      ``{policy}`` async state
====================================  =========  ==========================

The WAL families appear only on durable deployments (``--data-dir``);
the ``repro_process_*`` families only in ``workers_mode=process``, where
each shard is a worker process and the collector gathers every child's
counters into this one scrape (shards answer an ``export`` RPC; a shard
mid-respawn contributes an idle stub so the scrape never blocks on a
dead pipe); the ``repro_global_*`` families only when a global policy
tier is active (``--global-tier async|strict`` with ``--shards`` > 1,
see :mod:`repro.service.global_tier`).
"""

from __future__ import annotations

from .prom import HistogramSnapshot, MetricFamily, Registry


def build_service_registry(service) -> Registry:
    """A registry whose single collector snapshots ``service`` on scrape."""
    registry = Registry()
    registry.register(lambda: collect_service(service))
    return registry


def collect_service(service) -> "list[MetricFamily]":
    """One pass over the service's shards → metric families."""
    config = service.config

    epoch = MetricFamily(
        "repro_epoch", "gauge", "Policy-broadcast epoch."
    ).add(None, service.epoch)
    shards_g = MetricFamily(
        "repro_shards", "gauge", "Configured shard count."
    ).add(None, config.shards)

    admitted = MetricFamily(
        "repro_shard_admitted_total", "counter",
        "Queries admitted to the shard queue.",
    )
    rejected = MetricFamily(
        "repro_shard_rejected_total", "counter",
        "Queries rejected with backpressure (HTTP 429).",
    )
    completed = MetricFamily(
        "repro_shard_completed_total", "counter",
        "Completed checks by outcome (allowed/denied/error).",
    )
    queue_depth = MetricFamily(
        "repro_shard_queue_depth", "gauge", "Jobs waiting in the shard queue."
    )
    queue_capacity = MetricFamily(
        "repro_shard_queue_capacity", "gauge", "Admission queue slots."
    )
    busy = MetricFamily(
        "repro_shard_busy_workers", "gauge",
        "Workers currently executing a check.",
    )
    slow = MetricFamily(
        "repro_slow_queries_total", "counter",
        "Checks slower than the slow-query threshold.",
    )
    check_hist = MetricFamily(
        "repro_check_seconds", "histogram",
        "Full check latency, enqueue to completion.",
    )
    wait_hist = MetricFamily(
        "repro_queue_wait_seconds", "histogram",
        "Time spent waiting in the admission queue.",
    )
    batch_hist = MetricFamily(
        "repro_batch_size", "histogram",
        "Queued queries drained per worker wakeup.",
    )
    cache_hits = MetricFamily(
        "repro_decision_cache_hits_total", "counter",
        "Checks answered from the decision cache.",
    )
    cache_misses = MetricFamily(
        "repro_decision_cache_misses_total", "counter",
        "Checks that ran the full policy evaluation.",
    )
    cache_invalidations = MetricFamily(
        "repro_decision_cache_invalidations_total", "counter",
        "Cached verdicts dropped (version bumps and epoch clears).",
    )
    cache_entries = MetricFamily(
        "repro_decision_cache_entries", "gauge",
        "Verdicts currently memoized.",
    )
    inc_hits = MetricFamily(
        "repro_incremental_hits_total", "counter",
        "Policy checks answered from incremental running aggregates.",
    )
    inc_fallbacks = MetricFamily(
        "repro_incremental_fallbacks_total", "counter",
        "Incremental-eligible checks that fell back to full evaluation.",
    )
    inc_folds = MetricFamily(
        "repro_incremental_folds_total", "counter",
        "Usage-log commits folded into incremental state.",
    )
    inc_entries = MetricFamily(
        "repro_incremental_state_entries", "gauge",
        "Live incremental state entries (groups + windowed contributions).",
    )
    plan_hits = MetricFamily(
        "repro_plan_cache_hits_total", "counter",
        "Textual queries planned from the canonical-form plan cache.",
    )
    plan_misses = MetricFamily(
        "repro_plan_cache_misses_total", "counter",
        "Textual queries that required a fresh plan.",
    )
    build_hits = MetricFamily(
        "repro_join_build_cache_hits_total", "counter",
        "Hash-join build sides reused from the version-keyed cache.",
    )
    build_misses = MetricFamily(
        "repro_join_build_cache_misses_total", "counter",
        "Hash-join build sides (re)built over a base table.",
    )
    vector_batches = MetricFamily(
        "repro_vector_batches_total", "counter",
        "Row chunks produced by vectorized plan roots.",
    )
    vector_rows = MetricFamily(
        "repro_vector_rows_total", "counter",
        "Rows delivered through the vectorized path.",
    )
    engine_info = MetricFamily(
        "repro_engine_info", "gauge",
        "Execution engine per shard (value is always 1; the engine "
        "name is the label).",
    )
    columnar_batches = MetricFamily(
        "repro_columnar_batches_total", "counter",
        "Column batches produced by columnar plan roots.",
    )
    columnar_rows = MetricFamily(
        "repro_columnar_rows_total", "counter",
        "Rows delivered through the columnar path.",
    )
    chunks_scanned = MetricFamily(
        "repro_engine_chunks_scanned_total", "counter",
        "Table chunks scanned by pushed-down columnar filters.",
    )
    chunks_skipped = MetricFamily(
        "repro_engine_chunks_skipped_total", "counter",
        "Table chunks skipped via zone maps (min/max/null pruning).",
    )
    range_probes = MetricFamily(
        "repro_engine_range_probes_total", "counter",
        "Pushed-down range predicates answered from a sorted index.",
    )
    dag_shared = MetricFamily(
        "repro_dag_shared_nodes", "gauge",
        "Plan subtrees merged across policy branches in the current "
        "shared-subplan DAG set.",
    )
    dag_saved = MetricFamily(
        "repro_dag_saved_execs_total", "counter",
        "Subtree executions avoided by replaying a memoized shared "
        "DAG node.",
    )
    policy_hist = MetricFamily(
        "repro_policy_eval_seconds", "histogram",
        "Per-policy evaluation time within one check.",
    )
    violations = MetricFamily(
        "repro_policy_violations_total", "counter",
        "Violations reported per policy.",
    )
    phases = MetricFamily(
        "repro_phase_seconds_total", "counter",
        "Cumulative seconds per enforcement phase "
        "(query, log:*, policy_eval, compact_mark/delete/insert).",
    )
    wal_appends = MetricFamily(
        "repro_wal_appends_total", "counter", "WAL records appended."
    )
    wal_fsyncs = MetricFamily(
        "repro_wal_fsyncs_total", "counter", "WAL fsync calls issued."
    )
    wal_bytes = MetricFamily(
        "repro_wal_bytes", "gauge", "Current WAL segment size in bytes."
    )
    wal_seq = MetricFamily(
        "repro_wal_last_seq", "gauge",
        "Sequence number of the newest WAL record.",
    )
    proc_alive = MetricFamily(
        "repro_process_alive", "gauge",
        "Whether the shard's worker process is up (0 while respawning).",
    )
    proc_restarts = MetricFamily(
        "repro_process_restarts_total", "counter",
        "Worker processes respawned after a crash (WAL replay when "
        "durable).",
    )
    proc_inflight = MetricFamily(
        "repro_process_inflight", "gauge",
        "Requests in flight to the worker (admission window usage).",
    )

    durable = False
    any_process = False
    for shard in service.shards:
        label = {"shard": str(shard.index)}
        # The uniform shard surface: thread shards snapshot in-process,
        # process shards answer an RPC (or an idle stub mid-respawn).
        state = shard.export_state()
        snap = state["prom"]
        admitted.add(label, snap["admitted"])
        rejected.add(label, snap["rejected"])
        for outcome in ("allowed", "denied", "error"):
            completed.add(
                {"shard": str(shard.index), "outcome": outcome},
                snap["completed"][outcome],
            )
        queue_depth.add(label, state["queue_depth"])
        queue_capacity.add(label, config.queue_depth)
        busy.add(label, state["busy_workers"])
        slow.add(label, snap["slow"])
        for family, key in (
            (check_hist, "check_hist"),
            (wait_hist, "wait_hist"),
            (batch_hist, "batch_hist"),
        ):
            family.add_histogram(
                label, HistogramSnapshot.from_dict(snap[key])
            )
        cache = state["decision_cache"]
        if cache is not None:
            cache_hits.add(label, cache["hits"])
            cache_misses.add(label, cache["misses"])
            cache_invalidations.add(label, cache["invalidations"])
            cache_entries.add(label, cache["entries"])
        incremental = state["incremental"]
        if incremental is not None:
            inc_hits.add(label, incremental["hits"])
            inc_fallbacks.add(label, incremental["fallbacks"])
            inc_folds.add(label, incremental["folds"])
            inc_entries.add(label, incremental["state_entries"])
        engine = state["engine"]
        plan_hits.add(label, engine["plan_hits"])
        plan_misses.add(label, engine["plan_misses"])
        build_hits.add(label, engine["build_hits"])
        build_misses.add(label, engine["build_misses"])
        vector_batches.add(label, engine["vector_batches"])
        vector_rows.add(label, engine["vector_rows"])
        engine_info.add(
            {"shard": str(shard.index), "engine": engine.get("name", "")},
            1,
        )
        columnar_batches.add(label, engine.get("columnar_batches", 0))
        columnar_rows.add(label, engine.get("columnar_rows", 0))
        chunks_scanned.add(label, engine.get("chunks_scanned", 0))
        chunks_skipped.add(label, engine.get("chunks_skipped", 0))
        range_probes.add(label, engine.get("range_probes", 0))
        dag_shared.add(label, engine.get("dag_shared_nodes", 0))
        dag_saved.add(label, engine.get("dag_saved_execs", 0))
        for policy, hist_snap in sorted(snap["policy_eval"].items()):
            policy_hist.add_histogram(
                {"shard": str(shard.index), "policy": policy},
                HistogramSnapshot.from_dict(hist_snap),
            )
        for policy, count in sorted(snap["policy_violations"].items()):
            violations.add(
                {"shard": str(shard.index), "policy": policy}, count
            )
        for phase, seconds in sorted(snap["phase_totals"].items()):
            phases.add({"shard": str(shard.index), "phase": phase}, seconds)

        wal = state["wal"]
        if wal is not None:
            durable = True
            wal_appends.add(label, wal["appends"])
            wal_fsyncs.add(label, wal["fsyncs"])
            wal_bytes.add(label, wal["bytes"])
            wal_seq.add(label, wal["last_seq"])

        process_state = getattr(shard, "process_state", None)
        if process_state is not None:
            any_process = True
            process = process_state()
            proc_alive.add(label, 1 if process["alive"] else 0)
            proc_restarts.add(label, process["restarts"])
            proc_inflight.add(label, process["inflight"])

    tier = getattr(service, "global_tier", None)
    global_families: "list[MetricFamily]" = []
    if tier is not None:
        tier_stats = tier.stats()
        g_checks = MetricFamily(
            "repro_global_checks_total", "counter",
            "Global-tier admission checks by mode (async/strict).",
        )
        g_denials = MetricFamily(
            "repro_global_denials_total", "counter",
            "Queries denied by a global policy, by mode.",
        )
        for mode in ("async", "strict"):
            g_checks.add({"mode": mode}, tier_stats["checks"][mode])
            g_denials.add({"mode": mode}, tier_stats["denials"][mode])
        g_res_total = MetricFamily(
            "repro_global_reservations_total", "counter",
            "Two-phase strict reservations opened.",
        ).add(None, tier_stats["reservations"]["total"])
        g_res_active = MetricFamily(
            "repro_global_reservations_active", "gauge",
            "Strict reservations currently awaiting commit/abort.",
        ).add(None, tier_stats["reservations"]["active"])
        g_frames = MetricFamily(
            "repro_global_delta_frames_total", "counter",
            "Committed usage-log delta frames received from shards.",
        ).add(None, tier_stats["delta_frames"])
        g_folds = MetricFamily(
            "repro_global_folds_total", "counter",
            "Delta frames folded into aggregator state.",
        ).add(None, tier_stats["folds"])
        g_lag = MetricFamily(
            "repro_global_delta_lag", "gauge",
            "Delta frames queued but not yet folded (staleness window).",
        ).add(None, tier_stats["delta_lag"])
        g_staleness = MetricFamily(
            "repro_global_staleness_seconds", "gauge",
            "Seconds since the oldest unfolded delta arrived "
            "(0 when the aggregator is caught up).",
        ).add(None, tier_stats["staleness_seconds"])
        g_entries = MetricFamily(
            "repro_global_policy_entries", "gauge",
            "Folded aggregator state entries per global-async policy.",
        )
        for name, entry in sorted(tier_stats["policies"].items()):
            if entry["entries"] is not None:
                g_entries.add({"policy": name}, entry["entries"])
        global_families = [
            g_checks, g_denials, g_res_total, g_res_active,
            g_frames, g_folds, g_lag, g_staleness, g_entries,
        ]

    families = [
        epoch, shards_g, admitted, rejected, completed,
        queue_depth, queue_capacity, busy, slow,
        check_hist, wait_hist, batch_hist, policy_hist, violations, phases,
        cache_hits, cache_misses, cache_invalidations, cache_entries,
        inc_hits, inc_fallbacks, inc_folds, inc_entries,
        plan_hits, plan_misses,
        build_hits, build_misses, vector_batches, vector_rows,
        engine_info, columnar_batches, columnar_rows,
        chunks_scanned, chunks_skipped, range_probes,
        dag_shared, dag_saved,
    ]
    if durable:
        families.extend([wal_appends, wal_fsyncs, wal_bytes, wal_seq])
    if any_process:
        families.extend([proc_alive, proc_restarts, proc_inflight])
    families.extend(global_families)
    return families
