"""Table 4 — the time-independent optimization, on vs off.

Paper protocol: the time-independent policies P2, P3, P4 enforced on
query W3, reporting per-query times after 1, 5, 10, 15 and 20 submissions
with the time-independent optimization on and off ("No ti"); all other
optimizations stay enabled in both runs.

Paper shape: with the optimization, times are flat and the log is never
stored at all. Without it, P3 and P4 grow with the query count — plain
log compaction cannot reason about their aggregates, so it keeps their
provenance history and both policy evaluation and the compaction checks
scale with it. P2 barely changes: its schema log is tiny either way.

Our substrate scales the effect down (the pure-Python W3 dominates raw
totals), so alongside the paper's total-time columns we report the
*enforcement overhead* (total − query), where the growth lives, and
assert the shape on it. Checkpoints are 5× the paper's counts to give the
no-ti log room to accumulate.
"""

from __future__ import annotations

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.workloads import PolicyParams, make_policy, repeat_query, run_stream

from figutil import format_table, ms, publish, scaled

PAPER_COUNTS = [1, 5, 10, 15, 20]
STRETCH = 5  # our checkpoints are paper count × STRETCH
POLICIES = ["P2", "P3", "P4"]


def run_counts(db, policy_name, params, workload, time_independent):
    total = scaled(max(PAPER_COUNTS) * STRETCH)
    enforcer = Enforcer(
        db,
        [make_policy(policy_name, params)],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(time_independent=time_independent),
    )
    result = run_stream(
        enforcer, repeat_query(workload["W3"], uid=1, count=total)
    )
    assert result.rejected == 0
    entries = result.metrics.entries

    totals = {}
    overheads = {}
    for paper_count in PAPER_COUNTS:
        end = min(scaled(paper_count * STRETCH), total)
        window = entries[max(0, end - 5) : end]
        totals[paper_count] = sum(e.total_seconds for e in window) / len(window)
        overheads[paper_count] = sum(
            e.overhead_seconds for e in window
        ) / len(window)
    return totals, overheads, enforcer.store.total_live_size()


def test_table4_time_independent(
    benchmark, capsys, bench_db, bench_config, bench_workload
):
    params = PolicyParams.for_config(bench_config)

    totals = {}
    overheads = {}
    log_sizes = {}
    for policy_name in POLICIES:
        for flag in (True, False):
            key = (policy_name, flag)
            totals[key], overheads[key], log_sizes[key] = run_counts(
                bench_db.clone(), policy_name, params, bench_workload, flag
            )

    rows = []
    for paper_count in PAPER_COUNTS:
        row = [paper_count * STRETCH]
        for policy_name in POLICIES:
            row.append(round(ms(totals[(policy_name, True)][paper_count]), 3))
            row.append(round(ms(totals[(policy_name, False)][paper_count]), 3))
        rows.append(tuple(row))

    overhead_rows = []
    for paper_count in PAPER_COUNTS:
        row = [paper_count * STRETCH]
        for policy_name in POLICIES:
            row.append(
                round(ms(overheads[(policy_name, True)][paper_count]), 3)
            )
            row.append(
                round(ms(overheads[(policy_name, False)][paper_count]), 3)
            )
        overhead_rows.append(tuple(row))

    headers = ["count"]
    for policy_name in POLICIES:
        headers.extend([policy_name, f"{policy_name} no-ti"])

    note = (
        "Paper shape: flat with the optimization; without it P3/P4 grow "
        "(compaction alone keeps their whole provenance history). Final "
        "log sizes: "
        + ", ".join(
            f"{p}{'' if ti else ' no-ti'}={log_sizes[(p, ti)]}"
            for p in POLICIES
            for ti in (True, False)
        )
    )
    publish(
        capsys,
        "table4",
        format_table(
            "Table 4 — W3, time-independent policies: mean per-query "
            "policy+query time (ms) around the Nth query",
            headers,
            rows,
            note=note,
        )
        + format_table(
            "Table 4 (overhead view) — enforcement overhead only "
            "(total − query, ms)",
            headers,
            overhead_rows,
        ),
    )

    # --- shape assertions (on the overhead, where the growth lives) -------
    for policy_name in ("P3", "P4"):
        with_ti = overheads[(policy_name, True)]
        without_ti = overheads[(policy_name, False)]
        # flat with the optimization
        assert with_ti[20] < with_ti[5] * 2 + 0.002, (policy_name, with_ti)
        # growing without it
        assert without_ti[20] > without_ti[5] * 1.3, (policy_name, without_ti)
        # the optimized version wins at the end
        assert with_ti[20] < without_ti[20], policy_name
        # the log itself: never stored with ti, accumulating without
        assert log_sizes[(policy_name, True)] == 0
        assert log_sizes[(policy_name, False)] > 0

    # Benchmark the optimized steady state on P3.
    enforcer = Enforcer(
        bench_db.clone(),
        [make_policy("P3", params)],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    sql = bench_workload["W3"]
    run_stream(enforcer, repeat_query(sql, uid=1, count=3))
    benchmark.pedantic(lambda: enforcer.submit(sql, uid=1), rounds=8, iterations=1)
