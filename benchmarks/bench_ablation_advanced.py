"""Ablation — the advanced optimizations of §4.3.

Not a paper figure (the paper defers their evaluation to its technical
report), but DESIGN.md calls these design choices out, so this bench
quantifies them on the same workload:

- **Preemptive log compaction**: when interleaving pruned a policy before
  its logs were generated, probe the witness queries over the generated
  logs first; an empty probe proves the witness empty, so the missing
  (expensive) log increments are never produced. Measured on uid 0, where
  every policy prunes after the Users log.
- **Improved partial policies**: evaluate partials with lineage and stop
  early when a non-empty answer is independent of the current increment.
  Measured as overhead on uid 1 (our engine pays for lineage tracking; the
  decision equivalence is covered by the test suite).
"""

from __future__ import annotations

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.workloads import PolicyParams, make_policy, repeat_query, run_stream

from figutil import format_table, ms, publish, scaled

STEADY = scaled(12)


def steady(db, policy_names, params, sql, uid, **option_overrides):
    enforcer = Enforcer(
        db,
        [make_policy(name, params) for name in policy_names],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(**option_overrides),
    )
    result = run_stream(enforcer, repeat_query(sql, uid, STEADY))
    assert result.rejected == 0
    metrics = result.metrics
    half = STEADY // 2
    provenance = metrics.mean_phase_seconds("log:provenance", half)
    return metrics.mean_total_seconds(half), provenance


def test_ablation_preemptive_compaction(
    benchmark, capsys, bench_db, bench_config, bench_workload
):
    """uid 0 on W4 with the provenance-windowed policies P5+P6: with the
    probe, the mark phase never forces provenance generation."""
    params = PolicyParams.for_config(bench_config)
    sql = bench_workload["W4"]

    with_probe, prov_with = steady(
        bench_db.clone(), ["P5", "P6"], params, sql, 0, preemptive_compaction=True
    )
    without_probe, prov_without = steady(
        bench_db.clone(), ["P5", "P6"], params, sql, 0, preemptive_compaction=False
    )

    publish(
        capsys,
        "ablation_preemptive",
        format_table(
            "Ablation §4.3a — preemptive log compaction (P5+P6, W4, uid 0)",
            ["config", "total (ms)", "provenance generation (ms)"],
            [
                ("preemptive on", round(ms(with_probe), 3), round(ms(prov_with), 3)),
                (
                    "preemptive off",
                    round(ms(without_probe), 3),
                    round(ms(prov_without), 3),
                ),
            ],
            note=(
                "With the probe, the pruned policies' witness queries are "
                "shown empty without generating the provenance increment; "
                "without it, compaction generates provenance every query."
            ),
        ),
    )

    # Shape: the probe eliminates provenance generation entirely...
    assert prov_with == 0.0
    assert prov_without > 0.0
    # ...and that makes the whole pipeline faster.
    assert with_probe < without_probe

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_improved_partial(
    benchmark, capsys, bench_db, bench_config, bench_workload
):
    """uid 1 on W2: the lineage-based early stop costs a bounded premium
    over plain interleaving (it can only pay off on streams where old
    violations-adjacent state keeps partials non-empty)."""
    params = PolicyParams.for_config(bench_config)
    sql = bench_workload["W2"]

    plain, _ = steady(bench_db.clone(), ["P5"], params, sql, 1)
    improved, _ = steady(
        bench_db.clone(), ["P5"], params, sql, 1, improved_partial=True
    )

    publish(
        capsys,
        "ablation_improved_partial",
        format_table(
            "Ablation §4.3b — improved partial policies (P5, W2, uid 1)",
            ["config", "total (ms)"],
            [
                ("improved partial off", round(ms(plain), 3)),
                ("improved partial on", round(ms(improved), 3)),
            ],
            note=(
                "Lineage-tracked partial evaluation costs a bounded premium; "
                "decision equivalence is property-tested in the test suite."
            ),
        ),
    )

    assert improved < plain * 2.5 + 0.002

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
