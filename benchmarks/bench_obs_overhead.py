"""Observability overhead — tracing cost and the live /metrics scrape.

Two gates for :mod:`repro.obs`:

1. **Tracing is not the hot path.** The same concurrent marketplace
   stream runs through the gateway with per-query spans on and off
   (same modeled dispatch as :mod:`bench_service_throughput`); the
   traced run must keep at least 95% of the untraced throughput.
2. **The exposition survives contact with a real scrape.** A live HTTP
   server handles queries, ``GET /metrics`` is fetched like Prometheus
   would, sanity-checked, and the dump is persisted under
   ``benchmarks/results/`` (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import statistics
import threading
import time
from http.client import HTTPConnection

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.server import serve
from repro.service import ServiceConfig, ShardedEnforcerService
from repro.workloads import (
    MarketplaceConfig,
    build_marketplace_database,
    make_marketplace_workload,
    round_robin,
    run_service_stream,
)

from figutil import RESULTS_DIR, format_table, ms, publish, scaled

CONFIG = MarketplaceConfig(
    n_subscribers=8,
    rate_window=100_000_000,
    free_tier_window=100_000_000,
    rate_limit=scaled(30, minimum=2),
    free_tier_tuples=scaled(2_000, minimum=100),
)
QUERIES_PER_UID = scaled(10, minimum=3)
CLIENT_THREADS = 8
REPEATS = 3
OVERHEAD_FLOOR = 0.95  # traced run keeps >= 95% of untraced qps


def make_enforcer() -> Enforcer:
    from repro.workloads import sharded_contract

    return Enforcer(
        build_marketplace_database(CONFIG),
        sharded_contract(CONFIG),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


def make_stream():
    workload = make_marketplace_workload(CONFIG)
    uids = list(range(1, CONFIG.n_subscribers + 1))
    return round_robin(
        list(workload.all().values()), uids, QUERIES_PER_UID * len(uids)
    )


def measure_check_seconds() -> float:
    enforcer = make_enforcer()
    workload = make_marketplace_workload(CONFIG)
    samples = []
    for _ in range(3):
        for uid, sql in enumerate(workload.all().values(), start=1):
            start = time.perf_counter()
            enforcer.submit(sql, uid=uid)
            samples.append(time.perf_counter() - start)
    return sum(samples) / len(samples)


def run_once(stream, dispatch: float, tracing: bool):
    service = ShardedEnforcerService(
        make_enforcer(),
        ServiceConfig(
            shards=1,
            queue_depth=max(64, len(stream)),
            dispatch_seconds=dispatch,
            routing="modulo",
            tracing=tracing,
        ),
    )
    result = run_service_stream(
        service, stream, client_threads=CLIENT_THREADS
    )
    service.drain()
    return result


def test_tracing_overhead_under_five_percent(capsys):
    check_seconds = measure_check_seconds()
    dispatch = check_seconds  # modeled backend comparable to the check
    stream = make_stream()

    # Interleave the repeats so drift (thermal, noisy neighbors) hits
    # both configurations alike; compare medians.
    qps = {True: [], False: []}
    verdicts = {}
    for _ in range(REPEATS):
        for tracing in (False, True):
            result = run_once(stream, dispatch, tracing)
            qps[tracing].append(result.qps)
            verdicts[tracing] = (result.allowed, result.rejected)

    # Spans must never change decisions.
    assert verdicts[True] == verdicts[False]

    traced = statistics.median(qps[True])
    untraced = statistics.median(qps[False])
    ratio = traced / untraced

    publish(
        capsys,
        "obs_overhead",
        format_table(
            "Tracing overhead — marketplace stream through 1 shard "
            f"({CONFIG.n_subscribers} subscribers × {QUERIES_PER_UID} "
            f"queries, {CLIENT_THREADS} clients, median of {REPEATS})",
            ["tracing", "qps", "vs untraced"],
            [
                ["off", round(untraced, 1), "1.00x"],
                ["on", round(traced, 1), f"{ratio:.2f}x"],
            ],
            note=(
                f"modeled dispatch {ms(dispatch):.2f} ms/query; traced "
                f"run must keep >= {OVERHEAD_FLOOR:.0%} of untraced qps"
            ),
        ),
    )
    assert ratio >= OVERHEAD_FLOOR, (
        f"tracing cost too high: {traced:.1f} qps vs {untraced:.1f} "
        f"untraced ({ratio:.2f}x < {OVERHEAD_FLOOR}x)"
    )


def test_live_metrics_scrape(capsys):
    """Serve over HTTP, drive queries, scrape /metrics like Prometheus."""
    httpd = serve(
        make_enforcer(),
        port=0,
        config=ServiceConfig(shards=1, slow_query_seconds=1.0),
    )
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        workload = make_marketplace_workload(CONFIG)
        queries = list(workload.all().values())
        for uid in range(1, CONFIG.n_subscribers + 1):
            connection = HTTPConnection(*httpd.server_address)
            payload = json.dumps(
                {"sql": queries[uid % len(queries)], "uid": uid}
            ).encode()
            connection.request(
                "POST", "/query", body=payload,
                headers={"Content-Type": "application/json"},
            )
            connection.getresponse().read()
            connection.close()

        connection = HTTPConnection(*httpd.server_address)
        connection.request("GET", "/metrics")
        response = connection.getresponse()
        content_type = response.getheader("Content-Type")
        exposition = response.read().decode()
        connection.close()
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)

    assert content_type.startswith("text/plain; version=0.0.4")
    assert exposition.startswith("# HELP")
    for family in (
        "repro_shard_admitted_total",
        "repro_check_seconds_bucket",
        "repro_policy_eval_seconds_bucket",
        "repro_phase_seconds_total",
    ):
        assert family in exposition, family

    RESULTS_DIR.mkdir(exist_ok=True)
    dump = RESULTS_DIR / "metrics_exposition.txt"
    dump.write_text(exposition, encoding="utf-8")
    lines = len(exposition.splitlines())
    families = sum(
        1 for line in exposition.splitlines() if line.startswith("# TYPE")
    )
    publish(
        capsys,
        "obs_scrape",
        format_table(
            "Live /metrics scrape — HTTP gateway, "
            f"{CONFIG.n_subscribers} queries submitted",
            ["families", "lines", "bytes"],
            [[families, lines, len(exposition)]],
            note=f"full exposition dump saved to {dump.name}",
        ),
    )
