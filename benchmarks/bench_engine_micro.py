"""Engine micro-benchmarks: the substrate's own costs.

Not a paper artifact — these pin down the relative costs that the
reproduction's shapes depend on: index probe ≪ scan, hash join ≪ nested
loop, lineage tracking ≈ small multiple of plain execution (the paper's
"provenance costs about a query").

The ``TestRowVsVectorized`` class times identical queries on all three
execution disciplines (``engine="row"``, ``"vectorized"``,
``"columnar"``), asserts the speedup floors — columnar join/group must
beat the row engine ≥10× and the vectorized engine ≥2× at full scale —
and publishes ``results/BENCH_engine.json`` for the CI smoke lane.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.engine import Database, Engine

from figutil import RESULTS_DIR, format_table, publish, scaled

ROWS = scaled(20_000)


def build_database() -> Database:
    db = Database()
    db.load_table(
        "big",
        ["id", "grp", "val"],
        [(i, i % 100, i % 7) for i in range(ROWS)],
    )
    db.load_table("dims", ["grp", "name"], [(g, f"g{g}") for g in range(100)])
    return db


@pytest.fixture(scope="module")
def engine():
    engine = Engine(build_database())
    engine.execute("SELECT * FROM big WHERE id = 1")  # build the index
    return engine


def test_point_lookup_via_index(benchmark, engine):
    result = benchmark(lambda: engine.execute("SELECT * FROM big WHERE id = 12345"))
    assert len(result.rows) == 1


def test_full_scan_filter(benchmark, engine):
    result = benchmark(
        lambda: engine.execute("SELECT COUNT(*) FROM big WHERE grp < 50")
    )
    assert result.scalar() == ROWS // 2


def test_hash_join(benchmark, engine):
    result = benchmark(
        lambda: engine.execute(
            "SELECT COUNT(*) FROM big b, dims d WHERE b.grp = d.grp"
        )
    )
    assert result.scalar() == ROWS


def test_group_by_aggregate(benchmark, engine):
    result = benchmark(
        lambda: engine.execute(
            "SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp"
        )
    )
    assert len(result.rows) == 100


def test_lineage_overhead(benchmark, engine):
    """Lineage execution of the workhorse query shape; compare against
    test_group_by_aggregate in the benchmark table."""
    result = benchmark(
        lambda: engine.execute(
            "SELECT grp, COUNT(*) FROM big GROUP BY grp", lineage=True
        )
    )
    assert result.lineages is not None


def test_distinct_on(benchmark, engine):
    result = benchmark(
        lambda: engine.execute("SELECT DISTINCT ON (grp), big.id FROM big")
    )
    assert len(result.rows) == 100


def test_parse_and_plan(benchmark, engine):
    sql = (
        "SELECT b.grp, COUNT(DISTINCT b.val) FROM big b, dims d "
        "WHERE b.grp = d.grp AND b.id > 5 GROUP BY b.grp "
        "HAVING COUNT(DISTINCT b.val) > 1"
    )

    def plan_fresh():
        engine.invalidate_plans()
        return engine.plan(sql)

    benchmark(plan_fresh)


# -- row vs. vectorized vs. columnar -----------------------------------------

#: (name, SQL) pairs timed on every discipline. ``join`` and ``group``
#: are the headline lanes (probe and group-loop throughput, free of
#: result-materialization cost); ``join_rows``/``group_sum`` keep the
#: materializing variants honest, and ``prune`` isolates zone-map chunk
#: skipping (its predicate covers two ~CHUNK_SIZE id ranges out of the
#: whole table).
COMPARISON_QUERIES = [
    ("scan", "SELECT id, grp, val FROM big"),
    ("filter", "SELECT id FROM big WHERE grp < 50 AND val > 2"),
    ("join", "SELECT COUNT(*) FROM big b, dims d WHERE b.grp = d.grp"),
    (
        "join_rows",
        "SELECT b.id, d.name FROM big b, dims d WHERE b.grp = d.grp",
    ),
    ("group", "SELECT grp, COUNT(*) FROM big GROUP BY grp"),
    ("group_sum", "SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp"),
    ("prune", "SELECT COUNT(*) FROM big WHERE id >= 500 AND id < 1500"),
]

#: Vectorized-over-row floors (the PR-8 acceptance criterion, kept):
#: scan/filter/join_rows must hold 2x at full scale; every other lane
#: must at least break even. The quick smoke lane only checks the path
#: works and still wins.
VEC_SPEEDUP_FLOOR = 2.0
VEC_QUICK_SPEEDUP_FLOOR = 1.05
VEC_FLOOR_QUERIES = ("scan", "filter", "join_rows")

#: Columnar floors (this PR's acceptance criterion): join and group must
#: beat the row engine >=10x and the vectorized engine >=2x at full
#: scale; the 2x-over-vectorized floor is asserted in --quick too.
#: Non-headline lanes must not fall behind the vectorized engine.
COLUMNAR_FLOOR_QUERIES = ("join", "group")
COLUMNAR_ROW_FLOOR = 10.0
COLUMNAR_ROW_QUICK_FLOOR = 2.0
COLUMNAR_VEC_FLOOR = 2.0
COLUMNAR_BREAKEVEN = 0.9
COLUMNAR_QUICK_BREAKEVEN = 0.75

ENGINE_LABELS = ("row", "vectorized", "columnar")


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestRowVsVectorized:
    @pytest.fixture(scope="class")
    def comparison(self, request):
        """Seconds per (query, engine), best of three, warm plans and
        warm join-build caches on every side."""
        db = build_database()
        engines = [(label, Engine(db, label)) for label in ENGINE_LABELS]
        results = {}
        for name, sql in COMPARISON_QUERIES:
            reference = None
            for label, engine in engines:
                rows = sorted(engine.execute(sql).rows)  # warm plan + caches
                if reference is None:
                    reference = rows
                else:
                    assert rows == reference, f"{name}: {label} disagrees"
                results[(name, label)] = _best_of(
                    lambda engine=engine: engine.execute(sql)
                )
        quick = request.config.getoption("--quick", default=False)
        _publish_comparison(results, quick)
        return results, quick

    @pytest.mark.parametrize("name", [n for n, _ in COMPARISON_QUERIES])
    def test_vectorized_not_slower(self, comparison, name):
        results, quick = comparison
        speedup = results[(name, "row")] / results[(name, "vectorized")]
        floor = (
            (VEC_QUICK_SPEEDUP_FLOOR if quick else VEC_SPEEDUP_FLOOR)
            if name in VEC_FLOOR_QUERIES
            else 0.9  # the batch path must at least break even
        )
        assert speedup >= floor, (
            f"{name}: vectorized speedup {speedup:.2f}x under floor {floor}x"
        )

    @pytest.mark.parametrize("name", [n for n, _ in COMPARISON_QUERIES])
    def test_columnar_floors(self, comparison, name):
        results, quick = comparison
        vs_row = results[(name, "row")] / results[(name, "columnar")]
        vs_vec = results[(name, "vectorized")] / results[(name, "columnar")]
        if name in COLUMNAR_FLOOR_QUERIES:
            row_floor = (
                COLUMNAR_ROW_QUICK_FLOOR if quick else COLUMNAR_ROW_FLOOR
            )
            assert vs_row >= row_floor, (
                f"{name}: columnar {vs_row:.2f}x over row, "
                f"floor {row_floor}x"
            )
            assert vs_vec >= COLUMNAR_VEC_FLOOR, (
                f"{name}: columnar {vs_vec:.2f}x over vectorized, "
                f"floor {COLUMNAR_VEC_FLOOR}x"
            )
        else:
            floor = COLUMNAR_QUICK_BREAKEVEN if quick else COLUMNAR_BREAKEVEN
            assert vs_vec >= floor, (
                f"{name}: columnar {vs_vec:.2f}x over vectorized, "
                f"floor {floor}x"
            )


def _publish_comparison(results, quick: bool) -> None:
    names = [name for name, _ in COMPARISON_QUERIES]
    table_rows = []
    payload = {"rows": ROWS, "quick": quick, "queries": {}}
    for name in names:
        row_s = results[(name, "row")]
        vec_s = results[(name, "vectorized")]
        col_s = results[(name, "columnar")]
        table_rows.append(
            [
                name,
                row_s * 1000,
                vec_s * 1000,
                col_s * 1000,
                f"{row_s / col_s:.1f}x",
                f"{vec_s / col_s:.1f}x",
            ]
        )
        payload["queries"][name] = {
            "row_ms": row_s * 1000,
            "vectorized_ms": vec_s * 1000,
            "columnar_ms": col_s * 1000,
            "speedup": row_s / vec_s,
            "columnar_over_row": row_s / col_s,
            "columnar_over_vectorized": vec_s / col_s,
        }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2), encoding="utf-8"
    )
    publish(
        None,
        "BENCH_engine",
        format_table(
            f"Row vs. vectorized vs. columnar execution ({ROWS} rows)",
            [
                "query",
                "row ms",
                "vectorized ms",
                "columnar ms",
                "col/row",
                "col/vec",
            ],
            table_rows,
            note="Identical results asserted per query; JSON artifact in "
            "results/BENCH_engine.json.",
        ),
    )
