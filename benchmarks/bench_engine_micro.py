"""Engine micro-benchmarks: the substrate's own costs.

Not a paper artifact — these pin down the relative costs that the
reproduction's shapes depend on: index probe ≪ scan, hash join ≪ nested
loop, lineage tracking ≈ small multiple of plain execution (the paper's
"provenance costs about a query").
"""

from __future__ import annotations

import pytest

from repro.engine import Database, Engine

from figutil import scaled

ROWS = scaled(20_000)


@pytest.fixture(scope="module")
def engine():
    db = Database()
    db.load_table(
        "big",
        ["id", "grp", "val"],
        [(i, i % 100, i % 7) for i in range(ROWS)],
    )
    db.load_table("dims", ["grp", "name"], [(g, f"g{g}") for g in range(100)])
    engine = Engine(db)
    engine.execute("SELECT * FROM big WHERE id = 1")  # build the index
    return engine


def test_point_lookup_via_index(benchmark, engine):
    result = benchmark(lambda: engine.execute("SELECT * FROM big WHERE id = 12345"))
    assert len(result.rows) == 1


def test_full_scan_filter(benchmark, engine):
    result = benchmark(
        lambda: engine.execute("SELECT COUNT(*) FROM big WHERE grp < 50")
    )
    assert result.scalar() == ROWS // 2


def test_hash_join(benchmark, engine):
    result = benchmark(
        lambda: engine.execute(
            "SELECT COUNT(*) FROM big b, dims d WHERE b.grp = d.grp"
        )
    )
    assert result.scalar() == ROWS


def test_group_by_aggregate(benchmark, engine):
    result = benchmark(
        lambda: engine.execute(
            "SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp"
        )
    )
    assert len(result.rows) == 100


def test_lineage_overhead(benchmark, engine):
    """Lineage execution of the workhorse query shape; compare against
    test_group_by_aggregate in the benchmark table."""
    result = benchmark(
        lambda: engine.execute(
            "SELECT grp, COUNT(*) FROM big GROUP BY grp", lineage=True
        )
    )
    assert result.lineages is not None


def test_distinct_on(benchmark, engine):
    result = benchmark(
        lambda: engine.execute("SELECT DISTINCT ON (grp), big.id FROM big")
    )
    assert len(result.rows) == 100


def test_parse_and_plan(benchmark, engine):
    sql = (
        "SELECT b.grp, COUNT(DISTINCT b.val) FROM big b, dims d "
        "WHERE b.grp = d.grp AND b.id > 5 GROUP BY b.grp "
        "HAVING COUNT(DISTINCT b.val) > 1"
    )

    def plan_fresh():
        engine.invalidate_plans()
        return engine.plan(sql)

    benchmark(plan_fresh)
