"""Engine micro-benchmarks: the substrate's own costs.

Not a paper artifact — these pin down the relative costs that the
reproduction's shapes depend on: index probe ≪ scan, hash join ≪ nested
loop, lineage tracking ≈ small multiple of plain execution (the paper's
"provenance costs about a query").

The ``TestRowVsVectorized`` class times identical queries on the row
and batch engines, asserts the vectorized speedup floor, and publishes
``results/BENCH_engine.json`` for the CI smoke lane.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.engine import Database, Engine

from figutil import RESULTS_DIR, format_table, publish, scaled

ROWS = scaled(20_000)


def build_database() -> Database:
    db = Database()
    db.load_table(
        "big",
        ["id", "grp", "val"],
        [(i, i % 100, i % 7) for i in range(ROWS)],
    )
    db.load_table("dims", ["grp", "name"], [(g, f"g{g}") for g in range(100)])
    return db


@pytest.fixture(scope="module")
def engine():
    engine = Engine(build_database())
    engine.execute("SELECT * FROM big WHERE id = 1")  # build the index
    return engine


def test_point_lookup_via_index(benchmark, engine):
    result = benchmark(lambda: engine.execute("SELECT * FROM big WHERE id = 12345"))
    assert len(result.rows) == 1


def test_full_scan_filter(benchmark, engine):
    result = benchmark(
        lambda: engine.execute("SELECT COUNT(*) FROM big WHERE grp < 50")
    )
    assert result.scalar() == ROWS // 2


def test_hash_join(benchmark, engine):
    result = benchmark(
        lambda: engine.execute(
            "SELECT COUNT(*) FROM big b, dims d WHERE b.grp = d.grp"
        )
    )
    assert result.scalar() == ROWS


def test_group_by_aggregate(benchmark, engine):
    result = benchmark(
        lambda: engine.execute(
            "SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp"
        )
    )
    assert len(result.rows) == 100


def test_lineage_overhead(benchmark, engine):
    """Lineage execution of the workhorse query shape; compare against
    test_group_by_aggregate in the benchmark table."""
    result = benchmark(
        lambda: engine.execute(
            "SELECT grp, COUNT(*) FROM big GROUP BY grp", lineage=True
        )
    )
    assert result.lineages is not None


def test_distinct_on(benchmark, engine):
    result = benchmark(
        lambda: engine.execute("SELECT DISTINCT ON (grp), big.id FROM big")
    )
    assert len(result.rows) == 100


def test_parse_and_plan(benchmark, engine):
    sql = (
        "SELECT b.grp, COUNT(DISTINCT b.val) FROM big b, dims d "
        "WHERE b.grp = d.grp AND b.id > 5 GROUP BY b.grp "
        "HAVING COUNT(DISTINCT b.val) > 1"
    )

    def plan_fresh():
        engine.invalidate_plans()
        return engine.plan(sql)

    benchmark(plan_fresh)


# -- row vs. vectorized ------------------------------------------------------

#: (name, SQL) pairs timed on both disciplines. Scan/filter/join are the
#: tentpole shapes; the speedup floor below is asserted on them.
COMPARISON_QUERIES = [
    ("scan", "SELECT id, grp, val FROM big"),
    ("filter", "SELECT id FROM big WHERE grp < 50 AND val > 2"),
    (
        "join",
        "SELECT b.id, d.name FROM big b, dims d WHERE b.grp = d.grp",
    ),
    ("group", "SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp"),
]

#: Non-lineage scan/filter/join must be at least this much faster
#: vectorized (ISSUE acceptance criterion). The interpreter's constant
#: factors vary across machines; 2.0 holds comfortably at full scale,
#: and the quick smoke lane only checks the path works and still wins.
SPEEDUP_FLOOR = 2.0
QUICK_SPEEDUP_FLOOR = 1.05
FLOOR_QUERIES = ("scan", "filter", "join")


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestRowVsVectorized:
    @pytest.fixture(scope="class")
    def comparison(self, request):
        """Seconds per (query, discipline), best of three, warm plans
        and warm join-build caches on both sides."""
        db = build_database()
        vec = Engine(db, vectorized=True)
        row = Engine(db, vectorized=False)
        results = {}
        for name, sql in COMPARISON_QUERIES:
            reference = None
            for label, engine in (("vectorized", vec), ("row", row)):
                rows = engine.execute(sql).rows  # warm plan + caches
                if reference is None:
                    reference = rows
                else:
                    assert rows == reference, f"{name}: paths disagree"
                results[(name, label)] = _best_of(
                    lambda engine=engine: engine.execute(sql)
                )
        quick = request.config.getoption("--quick", default=False)
        _publish_comparison(results, quick)
        return results, quick

    @pytest.mark.parametrize("name", [n for n, _ in COMPARISON_QUERIES])
    def test_vectorized_not_slower(self, comparison, name):
        results, quick = comparison
        speedup = results[(name, "row")] / results[(name, "vectorized")]
        floor = (
            (QUICK_SPEEDUP_FLOOR if quick else SPEEDUP_FLOOR)
            if name in FLOOR_QUERIES
            else 0.9  # aggregation: batch path must at least break even
        )
        assert speedup >= floor, (
            f"{name}: vectorized speedup {speedup:.2f}x under floor {floor}x"
        )


def _publish_comparison(results, quick: bool) -> None:
    names = [name for name, _ in COMPARISON_QUERIES]
    table_rows = []
    payload = {"rows": ROWS, "quick": quick, "queries": {}}
    for name in names:
        row_s = results[(name, "row")]
        vec_s = results[(name, "vectorized")]
        speedup = row_s / vec_s
        table_rows.append(
            [name, row_s * 1000, vec_s * 1000, f"{speedup:.2f}x"]
        )
        payload["queries"][name] = {
            "row_ms": row_s * 1000,
            "vectorized_ms": vec_s * 1000,
            "speedup": speedup,
        }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(payload, indent=2), encoding="utf-8"
    )
    publish(
        None,
        "BENCH_engine",
        format_table(
            f"Row vs. vectorized execution ({ROWS} rows)",
            ["query", "row ms", "vectorized ms", "speedup"],
            table_rows,
            note="Identical results asserted per query; JSON artifact in "
            "results/BENCH_engine.json.",
        ),
    )
