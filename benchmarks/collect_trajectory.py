"""Consolidate per-bench JSON artifacts into one perf-history file.

Each machine-readable bench drops a ``results/BENCH_<name>.json``
snapshot of its headline numbers. This script merges every such file
into ``results/BENCH_trajectory.json``, keyed by commit, so the perf
trajectory across the PR sequence stays machine-readable:

    {
      "<short-sha>": {
        "commit": "<short-sha>",
        "subject": "<commit subject>",
        "date": "<committer date, ISO>",
        "benchmarks": {"engine": {...}, "policy_dag": {...}, ...}
      },
      ...
    }

Run it after a full bench pass (``pytest benchmarks/``)::

    python benchmarks/collect_trajectory.py

Re-running on the same commit overwrites that commit's entry; history
for other commits is preserved. ``--key`` overrides the commit key
(e.g. a PR number) when consolidating off-commit results.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
TRAJECTORY = RESULTS_DIR / "BENCH_trajectory.json"


def git_describe() -> dict:
    """Commit identity for the key and entry metadata."""
    def line(*args: str) -> str:
        return subprocess.run(
            ["git", *args],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()

    return {
        "commit": line("rev-parse", "--short", "HEAD"),
        "subject": line("log", "-1", "--format=%s"),
        "date": line("log", "-1", "--format=%cI"),
    }


def collect() -> dict:
    """Every BENCH_*.json payload, keyed by bench name."""
    benchmarks = {}
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        if path.name == TRAJECTORY.name:
            continue
        name = path.stem[len("BENCH_"):]
        try:
            benchmarks[name] = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            print(f"skipping {path.name}: {error}", file=sys.stderr)
    return benchmarks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--key",
        default=None,
        help="trajectory key (defaults to the current short commit sha)",
    )
    args = parser.parse_args(argv)

    identity = git_describe()
    key = args.key or identity["commit"]
    benchmarks = collect()
    if not benchmarks:
        print("no BENCH_*.json artifacts found; run the benches first",
              file=sys.stderr)
        return 1

    history = {}
    if TRAJECTORY.exists():
        history = json.loads(TRAJECTORY.read_text(encoding="utf-8"))
    history[key] = {**identity, "benchmarks": benchmarks}
    TRAJECTORY.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"{TRAJECTORY.name}: {len(history)} entr"
        f"{'y' if len(history) == 1 else 'ies'}, "
        f"{len(benchmarks)} benchmark(s) under key {key!r}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
