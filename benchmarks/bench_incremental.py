"""Incremental maintenance — per-check cost vs usage-log size.

The claim: with incremental maintenance, a check of an incrementalizable
policy costs the same whether the usage log holds 1k or 50k entries —
the enforcer consults per-group running aggregates plus the query's own
increment instead of re-aggregating history. Full evaluation of the same
policy degrades linearly with the log.

Protocol: a lifetime-quota policy (windowless ``COUNT(DISTINCT u.ts)``
over the users log — compaction cannot prune it, so full evaluation must
scan everything) is checked by the same cheap query after seeding the
log to a small and a large size. Both systems see identical submissions;
the bench asserts their decisions match and publishes
``results/BENCH_incremental.json`` for the CI smoke lane.
"""

from __future__ import annotations

import gc
import json
import statistics
import time

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.log import SimulatedClock, standard_registry

from figutil import RESULTS_DIR, format_table, publish, scaled

SMALL = scaled(1_000, minimum=250)
LARGE = scaled(50_000, minimum=3_000)
REPEATS = 30

#: Threshold far above any seeded size: the policy never fires, so every
#: submission commits and the log keeps growing.
POLICY = Policy.from_sql(
    "lifetime_quota",
    "SELECT DISTINCT 'lifetime quota exceeded' FROM users u "
    "WHERE u.uid = 1 HAVING COUNT(DISTINCT u.ts) > 10000000",
)

QUERY = "SELECT i.iid FROM items i"


def build_database() -> Database:
    db = Database()
    db.load_table("items", ["iid"], [(i,) for i in range(8)])
    return db


def make_enforcer(incremental: bool) -> Enforcer:
    return Enforcer(
        build_database(),
        [POLICY],
        registry=standard_registry().subset(["users"]),
        clock=SimulatedClock(default_step_ms=10),
        # Compaction cannot prune a windowless policy (every entry stays
        # live forever), so its per-query mark scan over the full log is
        # pure noise here — off for both systems, decisions unchanged.
        options=EnforcerOptions.datalawyer(
            incremental=incremental, log_compaction=False
        ),
    )


def seed(enforcer: Enforcer, start_ts: int, count: int) -> None:
    """Append ``count`` log entries directly (distinct timestamps)."""
    store = enforcer.store
    for ts in range(start_ts, start_ts + count):
        store.set_time(ts)
        store.stage("users", [(1,)], ts)
    store.commit(None, ["users"])
    # Submitted queries must stamp later timestamps than the seed.
    enforcer.clock.sleep(start_ts + count + 1000)


def assert_lockstep(incremental: Enforcer, full: Enforcer, n: int) -> None:
    """Drive both systems through the same submissions; decisions match."""
    for _ in range(n):
        mine = incremental.submit(QUERY, uid=1)
        theirs = full.submit(QUERY, uid=1)
        assert mine.allowed == theirs.allowed
        assert [v.policy_name for v in mine.violations] == [
            v.policy_name for v in theirs.violations
        ]


def measure(enforcer: Enforcer) -> float:
    """Median per-check milliseconds, measured in isolation.

    Isolation matters: interleaving the two systems in one timed loop
    makes the full evaluator's 50k-row scan evict the caches right
    before every timed incremental submit, inflating the large-log
    medians with pollution that has nothing to do with the checked
    path. Decision equivalence is asserted separately (lockstep, above).

    GC is paused over the timed region: a generation-2 sweep scans the
    whole heap, so with a 50k-entry log it shows up as log-proportional
    noise in sub-millisecond medians — a property of CPython's collector,
    not of the checked path.
    """
    samples = []
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPEATS):
            begin = time.perf_counter()
            enforcer.submit(QUERY, uid=1)
            samples.append((time.perf_counter() - begin) * 1000)
    finally:
        gc.enable()
    return statistics.median(samples)


def test_incremental_flat_vs_log_size(capsys):
    classification = {
        entry["runtime"]: entry["incrementalizable"]
        for entry in make_enforcer(True).incremental_report()
    }
    assert classification == {"lifetime_quota": True}

    incremental = make_enforcer(True)
    incremental.warm_incremental()
    full = make_enforcer(False)

    seed(incremental, 0, SMALL)
    seed(full, 0, SMALL)
    assert_lockstep(incremental, full, 10)
    # Warm both paths (plan caches, maintainer bootstrap) off the clock.
    measure(incremental)
    measure(full)
    inc_small = measure(incremental)
    full_small = measure(full)

    # Each enforcer saw the same submit count, so their clocks agree;
    # the second seed just has to start past every stamped timestamp.
    submits = 10 + 3 * REPEATS
    grow = LARGE - SMALL - submits
    seed(incremental, SMALL + 10 * submits + 2000, grow)
    seed(full, SMALL + 10 * submits + 2000, grow)
    assert_lockstep(incremental, full, 10)
    inc_large = measure(incremental)
    full_large = measure(full)

    stats = incremental.incremental.stats
    assert stats.hits > 0, "incremental path never engaged"
    assert stats.fallbacks == 0, stats.fallback_reasons

    inc_ratio = inc_large / inc_small
    full_ratio = full_large / full_small
    speedup = full_large / inc_large

    payload = {
        "sizes": {"small": SMALL, "large": LARGE},
        "incremental_ms": {"small": inc_small, "large": inc_large},
        "full_eval_ms": {"small": full_small, "large": full_large},
        "incremental_ratio": inc_ratio,
        "full_eval_ratio": full_ratio,
        "speedup_at_large": speedup,
        "incremental_stats": stats.as_dict(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_incremental.json").write_text(
        json.dumps(payload, indent=2), encoding="utf-8"
    )
    publish(
        capsys,
        "BENCH_incremental",
        format_table(
            "Incremental maintenance — per-check ms vs usage-log size",
            ["system", f"{SMALL} entries", f"{LARGE} entries", "ratio"],
            [
                ("incremental", round(inc_small, 3), round(inc_large, 3),
                 round(inc_ratio, 2)),
                ("full eval", round(full_small, 3), round(full_large, 3),
                 round(full_ratio, 2)),
            ],
            note=(
                "Decisions asserted identical per submission; JSON "
                "artifact in results/BENCH_incremental.json."
            ),
        ),
    )

    # The incremental check must not grow with the log. The floor differs
    # by lane: full scale asserts the paper-style bound; the CI smoke
    # lane's shrunken sizes leave sub-millisecond medians where scheduler
    # noise dominates, so it gets slack.
    quick = LARGE < 50_000
    assert inc_ratio <= (2.0 if quick else 1.25), payload
    # Full evaluation must actually degrade — otherwise the comparison
    # proves nothing about the maintained state.
    assert full_ratio >= (2.0 if quick else 5.0), payload
    # And at the large log the incremental path must win outright.
    assert speedup >= (2.0 if quick else 5.0), payload
