"""Ablation — deferred compaction (§5.2's closing remark).

"In our experiments, DataLawyer prunes the log after each new query. Such
eager pruning, however, is not necessary. Instead, DataLawyer could
compact the log less frequently or whenever the system has idle
resources to further reduce the policy checking overhead."

This bench sweeps the compaction interval on the Figure-1 workload
(P6 + W1, uid 1) and reports the per-query compaction cost against the
peak log size — the trade the remark describes.
"""

from __future__ import annotations

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.workloads import PolicyParams, make_policy, repeat_query, run_stream

from figutil import format_table, ms, publish, scaled

INTERVALS = [1, 5, 20]
QUERIES = scaled(120)


def test_ablation_deferred_compaction(
    benchmark, capsys, bench_db, bench_config, bench_workload
):
    params = PolicyParams.for_config(bench_config)
    sql = bench_workload["W1"]

    rows = []
    measured = {}
    for interval in INTERVALS:
        enforcer = Enforcer(
            bench_db.clone(),
            [make_policy("P6", params)],
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(compaction_every=interval),
        )
        peak = 0
        for _ in range(QUERIES):
            decision = enforcer.submit(sql, uid=1, execute=False)
            assert decision.allowed
            peak = max(peak, enforcer.store.total_live_size())
        metrics = enforcer.metrics_log
        half = QUERIES // 2
        compaction = sum(
            metrics.mean_phase_seconds(phase, half)
            for phase in ("compact_mark", "compact_delete", "compact_insert")
        )
        total = metrics.mean_total_seconds(half)
        measured[interval] = (compaction, total, peak)
        rows.append(
            (
                interval,
                round(ms(compaction), 3),
                round(ms(total), 3),
                peak,
            )
        )

    publish(
        capsys,
        "ablation_deferred_compaction",
        format_table(
            "Ablation §5.2 — compaction interval sweep (P6 + W1, uid 1, "
            f"{QUERIES} queries)",
            ["compact every", "compaction/query (ms)", "total/query (ms)", "peak log"],
            rows,
            note=(
                "Less frequent compaction amortizes the mark/delete cost "
                "across k queries at the price of a larger in-between log."
            ),
        ),
    )

    # Amortized compaction cost drops with the interval...
    assert measured[20][0] < measured[1][0]
    # ...while the peak log size grows with it.
    assert measured[20][2] > measured[1][2]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
