"""The decision cache on a repeated-query workload.

Production traffic repeats: dashboards, monitors, and API clients issue
the same query text over and over. The policy contract here is the
expensive-but-cacheable kind: consent checks that join the usage-log
increment against large base tables (chartevents × d_patients) on every
evaluation. All are time-independent, so every whole-check verdict is
``stable`` and the steady state answers from the cache, skipping policy
evaluation entirely while the submitted point-lookups stay cheap.

Asserted invariants (not just speed):

- every decision — verdict, violations, result rows — is bit-identical
  with and without the cache, and so is the persisted usage log;
- the cached run reaches at least 3x the uncached throughput;
- after a WAL recovery the cache starts empty and the rebuilt enforcer
  keeps producing the same decisions (verdict memos are not durable
  state, so a restart merely re-warms).
"""

from __future__ import annotations

import time

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.log import SimulatedClock
from repro.storage.wal import initialize_durability, recover_enforcer

from figutil import format_table, publish, scaled

#: Repeats of the 4-entry (query, uid) cycle; the repeat count makes the
#: warm fraction dominate, as in a dashboard steady state.
ROUNDS = scaled(40)
SPEEDUP_FLOOR = 3.0


def consent_policy(uid: int, threshold: int) -> Policy:
    """User ``uid`` may not read chart data of deceased patients whose
    readings exceed ``threshold`` — a witness that joins the increment
    against two base tables on every evaluation."""
    return Policy.from_sql(
        f"consent-{uid}",
        f"SELECT DISTINCT 'consent: user {uid} read chart data of a "
        f"deceased patient' "
        f"FROM users u, schema s, chartevents c, d_patients d "
        f"WHERE u.ts = s.ts AND u.uid = {uid} AND s.irid = 'd_patients' "
        f"AND c.subject_id = d.subject_id "
        f"AND d.hospital_expire_flg = 'Y' "
        f"AND c.value1num > {threshold}",
        "consent check over chartevents x d_patients",
    )


def make_enforcer(db, decision_cache: bool) -> Enforcer:
    policies = [consent_policy(uid, 10_000 + uid) for uid in (1, 2, 3)]
    return Enforcer(
        db,
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(decision_cache=decision_cache),
    )


def make_stream(rounds: int) -> "list[tuple[str, int]]":
    pairs = [
        ("SELECT * FROM d_patients WHERE subject_id = 7", 1),
        ("SELECT * FROM d_patients WHERE subject_id = 7", 2),
        ("SELECT * FROM d_patients WHERE subject_id = 11", 3),
        ("SELECT * FROM d_patients WHERE subject_id = 11", 1),
    ]
    return pairs * rounds


def run_stream(enforcer, stream):
    """Submit the stream; returns (decision fingerprints, elapsed s)."""
    fingerprints = []
    start = time.perf_counter()
    for sql, uid in stream:
        decision = enforcer.submit(sql, uid=uid)
        fingerprints.append(
            (
                decision.allowed,
                tuple(
                    (v.policy_name, v.message) for v in decision.violations
                ),
                None
                if decision.result is None
                else tuple(map(tuple, decision.result.rows)),
            )
        )
    return fingerprints, time.perf_counter() - start


def test_decision_cache_speedup(capsys, bench_db):
    stream = make_stream(ROUNDS)

    uncached = make_enforcer(bench_db.clone(), decision_cache=False)
    cached = make_enforcer(bench_db.clone(), decision_cache=True)

    plain_decisions, plain_elapsed = run_stream(uncached, stream)
    cached_decisions, cached_elapsed = run_stream(cached, stream)

    # Bit-identical behaviour first — a fast wrong answer is worthless.
    assert cached_decisions == plain_decisions
    assert (
        cached.store.total_live_size() == uncached.store.total_live_size()
    )
    assert cached.store.versions() == uncached.store.versions()

    stats = cached.decision_cache.stats
    assert stats.hits >= len(stream) - 4  # everything after the warmup

    plain_qps = len(stream) / plain_elapsed
    cached_qps = len(stream) / cached_elapsed
    speedup = cached_qps / plain_qps

    publish(
        capsys,
        "decision_cache",
        format_table(
            "Decision cache — repeated-query steady state "
            f"(3 consent policies, {len(stream)} checks, 4 distinct keys)",
            ["config", "qps", "checks", "cache hits", "speedup"],
            [
                ("cache off", round(plain_qps, 1), len(stream), "-", "1.0x"),
                (
                    "cache on",
                    round(cached_qps, 1),
                    len(stream),
                    stats.hits,
                    f"{speedup:.1f}x",
                ),
            ],
            note=(
                "Decisions, result rows, and the persisted usage log are "
                "asserted bit-identical between the two runs; the cached "
                "run answers warm checks without re-evaluating policies."
            ),
        ),
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"decision cache speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x floor"
    )


def test_recovery_rebuilds_an_empty_consistent_cache(tmp_path, bench_db):
    stream = make_stream(max(2, scaled(4)))

    durable = make_enforcer(bench_db.clone(), decision_cache=True)
    initialize_durability(durable, tmp_path)
    twin = make_enforcer(bench_db.clone(), decision_cache=True)

    before, _ = run_stream(durable, stream)
    twin_before, _ = run_stream(twin, stream)
    assert before == twin_before
    assert len(durable.decision_cache) > 0
    durable.store.wal.close()

    recovered, wal, report = recover_enforcer(
        tmp_path, clock=SimulatedClock(default_step_ms=10)
    )
    try:
        assert report.last_seq == len(stream)
        cache = recovered.decision_cache
        assert cache is None or len(cache) == 0  # memos are not durable
        after, _ = run_stream(recovered, stream * 2)
        twin_after, _ = run_stream(twin, stream * 2)
        assert after == twin_after
        assert recovered.store.versions() == twin.store.versions()
        assert recovered.decision_cache.stats.hits > 0  # re-warmed
    finally:
        wal.close()
