"""Figure 5 — policy unification: scaling the number of policies.

Paper protocol: n structurally identical per-user rate-limit policies
(P1-style, one per user) while n users submit W1 round-robin; the total
number of queries is held constant as n grows 10 → 100 → 1000. Compared:
{not unified} × {union, serial, interleaved} and {unified} × {serial,
interleaved, union+shared} — the last lane is this repo's shared-subplan
DAG running the unified branch set in one pass over the log.

Paper shape: without unification, policy-checking time is O(n) for every
strategy — union is the cheapest (one statement), serial pays one client
round-trip per policy, interleaved about twice that. With unification the
time is constant in n regardless of strategy: one policy joined with an
n-row constants table.

Scaled down for the pure-Python engine: n ∈ {4, 16, 64} (raise with
REPRO_BENCH_SCALE). Reported time is policy evaluation per query plus the
modeled per-statement dispatch latency (the paper's JDBC round trips; our
engine is in-process, so serial-vs-union would otherwise be invisible).
"""

from __future__ import annotations

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.log import SimulatedClock
from repro.workloads import dispatch_cost, round_robin, run_stream

from figutil import format_table, ms, publish, scaled

POLICY_COUNTS = [scaled(4), scaled(16), scaled(64)]
QUERIES_TOTAL = scaled(48)
WINDOW = 400
MAX_REQUESTS = 10_000  # never fires: the paper measures the allowed path

STRATEGIES = {
    # plan_sharing is pinned off on the union baseline: it measures the
    # paper's one-UNION-statement strategy, not the shared-subplan DAG.
    "not-unified;union": EnforcerOptions.datalawyer(
        unification=False,
        interleaved=False,
        eval_strategy="union",
        plan_sharing=False,
    ),
    "not-unified;serial": EnforcerOptions.datalawyer(
        unification=False, interleaved=False, eval_strategy="serial"
    ),
    "not-unified;interleaved": EnforcerOptions.datalawyer(
        unification=False, interleaved=True
    ),
    "unified;serial": EnforcerOptions.datalawyer(
        unification=True, interleaved=False, eval_strategy="serial"
    ),
    "unified;interleaved": EnforcerOptions.datalawyer(
        unification=True, interleaved=True
    ),
    # This PR's lane: SQL-level unification plus shared-subplan DAG
    # execution of the unified branch set (one pass over the log).
    "unified;union+shared": EnforcerOptions.datalawyer(
        unification=True,
        interleaved=False,
        eval_strategy="union",
        plan_sharing=True,
    ),
}


def make_rate_policy(uid: int) -> Policy:
    return Policy.from_sql(
        f"rate-u{uid}",
        f"SELECT DISTINCT 'user {uid} rate limited' "
        f"FROM users u, clock c "
        f"WHERE u.uid = {uid} AND u.ts > c.ts - {WINDOW} "
        f"HAVING COUNT(DISTINCT u.ts) > {MAX_REQUESTS}",
    )


def run_strategy(db, n_policies, options, sql):
    policies = [make_rate_policy(uid) for uid in range(1, n_policies + 1)]
    enforcer = Enforcer(
        db,
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=options,
    )
    stream = round_robin([sql], list(range(1, n_policies + 1)), QUERIES_TOTAL)
    result = run_stream(enforcer, stream, execute=True)
    assert result.rejected == 0
    metrics = result.metrics
    half = QUERIES_TOTAL // 2
    per_query_eval = metrics.mean_phase_seconds("policy_eval", half)
    statements = metrics.total_count("statements") / len(metrics.entries)
    return per_query_eval + dispatch_cost(statements), statements


def test_fig5_unification(benchmark, capsys, bench_db, bench_workload):
    sql = bench_workload["W1"]
    results = {}
    rows = []
    for n_policies in POLICY_COUNTS:
        row = [n_policies]
        for name, options in STRATEGIES.items():
            cost, statements = run_strategy(
                bench_db.clone(), n_policies, options, sql
            )
            results[(name, n_policies)] = cost
            row.append(round(ms(cost), 3))
        rows.append(tuple(row))

    publish(
        capsys,
        "fig5",
        format_table(
            "Figure 5 — per-query policy evaluation + dispatch (ms) as the "
            f"policy count grows (constant {QUERIES_TOTAL} queries)",
            ["policies", *STRATEGIES.keys()],
            rows,
            note=(
                "Paper shape: without unification every strategy is O(n) "
                "(union cheapest, serial pays per-statement dispatch, "
                "interleaved ~2x serial's statements); with unification the "
                "cost is flat in n."
            ),
        ),
    )

    small, large = POLICY_COUNTS[0], POLICY_COUNTS[-1]
    factor = large / small

    # --- shape assertions -------------------------------------------------
    # Not-unified strategies grow roughly linearly: at least 40% of the
    # ideal slope between the smallest and largest policy count.
    for name in ("not-unified;union", "not-unified;serial", "not-unified;interleaved"):
        ratio = results[(name, large)] / results[(name, small)]
        assert ratio > factor * 0.4, (name, ratio, factor)

    # Unified strategies stay flat (within 2x across a 16x policy growth).
    for name in ("unified;serial", "unified;interleaved", "unified;union+shared"):
        ratio = results[(name, large)] / results[(name, small)]
        assert ratio < 2.0, (name, ratio)

    # At the largest count, unification beats every non-unified strategy.
    for unified_name in ("unified;serial", "unified;interleaved"):
        for plain_name in (
            "not-unified;union",
            "not-unified;serial",
            "not-unified;interleaved",
        ):
            assert results[(unified_name, large)] < results[(plain_name, large)]

    # Among non-unified strategies at the largest count: union is cheapest
    # (single statement vs one per policy).
    assert (
        results[("not-unified;union", large)]
        < results[("not-unified;serial", large)]
    )

    # Unification + shared-subplan DAG execution beats union-only — the
    # best non-unified strategy — at every policy count, not just the
    # largest: merging at the SQL level and then sharing subplans leaves
    # one flat-cost branch set against union's O(n) statement.
    for n_policies in POLICY_COUNTS:
        assert (
            results[("unified;union+shared", n_policies)]
            < results[("not-unified;union", n_policies)]
        ), n_policies

    # Benchmark: unified steady state at the largest policy count.
    policies = [make_rate_policy(uid) for uid in range(1, large + 1)]
    enforcer = Enforcer(
        bench_db.clone(),
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    run_stream(enforcer, round_robin([sql], [1, 2, 3], 5))
    benchmark.pedantic(lambda: enforcer.submit(sql, uid=2), rounds=10, iterations=1)
