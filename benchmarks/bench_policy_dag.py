"""Shared-subplan DAG execution — the whole policy set in one log pass.

The claim: evaluating P1-P6 as a shared-subplan DAG (identical scans,
pushed-filter index scans, and hash-join builds merged across branches,
each executed once per check) beats branch-at-a-time union evaluation by
>= 2x per check, with decisions and usage-log state bit-identical.

Protocol: uid 1 submits W1 point lookups while uids 2-6 replay a cohort
range scan over ``d_patients`` — every such query logs a few dozen
provenance rows, so the ``users``-``provenance`` join build that P3, P5
and P6 all contain is the dominant per-check cost and grows with the
stream. The baseline rebuilds it once per branch per check; the DAG
builds it once per check. Cost is measured *in-stream* (mean
``policy_eval`` seconds over the second half), so shared-node memos are
invalidated naturally by each query's own log appends, exactly as in
production. GC is paused over the streams: a generation-2 sweep scans
the whole heap, which shows up as log-proportional noise either way.

Equivalence is verified separately on a shorter stream with thresholds
lowered so policies actually fire: per-submission decisions, violations,
and the final state of every table must be bit-identical across the
row, vectorized, and columnar engines for each strategy — and decisions
plus table state must also match between the two strategies (violation
*reports* legitimately differ: the union statement labels each firing
``policy-set``, the DAG short-circuits and names the firing member).
"""

from __future__ import annotations

import gc
import json

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.workloads import (
    PolicyParams,
    make_all_policies,
    make_workload,
    round_robin,
    run_stream,
)

from figutil import RESULTS_DIR, format_table, ms, publish

#: Per-check speedup floor (the acceptance criterion). The CI smoke
#: lane's shrunken database leaves ~1-2ms means where scheduler noise
#: matters, so it asserts a reduced floor over a shorter stream.
SPEEDUP_FLOOR = 2.0
QUICK_FLOOR = 1.5

ENGINES = ("row", "vectorized", "columnar")

STRATEGIES = {
    # Branch-at-a-time: one UNION statement, every branch planned and
    # executed independently (the pre-DAG evaluation path).
    "union": EnforcerOptions.noopt(plan_sharing=False),
    # Shared-subplan DAG over the same branch plans.
    "shared-dag": EnforcerOptions.noopt(plan_sharing=True),
}


def cohort_stream(config, total):
    """W1 from uid 1, a d_patients cohort range scan from uids 2-6."""
    n = config.n_patients
    w1 = make_workload(config)["W1"]
    cohort = (
        f"SELECT * FROM d_patients WHERE subject_id > {n // 3} "
        f"AND subject_id < {5 * n // 6}"
    )
    return round_robin(
        [w1, cohort, cohort, cohort, cohort, cohort], [1, 2, 3, 4, 5, 6], total
    )


def make_enforcer(db, config, options, engine=None, **param_overrides):
    params = PolicyParams.for_config(config, **param_overrides)
    if engine is not None:
        options = EnforcerOptions.noopt(
            plan_sharing=options.plan_sharing, engine=engine
        )
    return Enforcer(
        db,
        make_all_policies(params),
        clock=SimulatedClock(default_step_ms=10),
        options=options,
    )


def run_lane(db, config, options, total):
    """One full stream; returns (mean policy_eval seconds, StreamResult)."""
    enforcer = make_enforcer(db, config, options)
    stream = cohort_stream(config, total)
    gc.collect()
    gc.disable()
    try:
        result = run_stream(enforcer, stream, execute=True)
    finally:
        gc.enable()
    mean = result.metrics.mean_phase_seconds("policy_eval", total // 2)
    return mean, result, enforcer


def database_fingerprint(database):
    """Every table's (tid, row) pairs — the bit-identity witness."""
    return tuple(
        (name, tuple(database.table(name).scan()))
        for name in database.table_names()
    )


def run_equivalence_lane(db, config, options, engine, total):
    """A firing stream driven submission-by-submission.

    Every uid — including the restricted uid 1 that P3-P6 watch — runs
    the cohort scan, and P3's output cap is lowered below the cohort
    size, so uid 1's submissions are rejected: both the commit path
    (allowed) and the revert path (rejected) mutate the log, and both
    must land identically under every engine and strategy.
    """
    enforcer = make_enforcer(
        db, config, options, engine=engine, p3_max_output=20
    )
    n = config.n_patients
    cohort = (
        f"SELECT * FROM d_patients WHERE subject_id > {n // 3} "
        f"AND subject_id < {5 * n // 6}"
    )
    decisions = []
    reports = []
    for sql, uid in round_robin([cohort], [1, 2, 3, 4, 5, 6], total):
        decision = enforcer.submit(sql, uid=uid)
        decisions.append(decision.allowed)
        reports.append(
            tuple((v.policy_name, v.message) for v in decision.violations)
        )
    return decisions, reports, database_fingerprint(enforcer.database)


def test_policy_dag_speedup(capsys, bench_config, _bench_template):
    quick = bench_config.n_patients < 300
    total = 240 if quick else 300
    floor = QUICK_FLOOR if quick else SPEEDUP_FLOOR

    lanes = {}
    for name, options in STRATEGIES.items():
        lanes[name] = run_lane(
            _bench_template.clone(), bench_config, options, total
        )

    base_mean, base_result, _ = lanes["union"]
    dag_mean, dag_result, dag_enforcer = lanes["shared-dag"]
    speedup = base_mean / dag_mean

    # Same stream, same decisions — the speedup compares equal work.
    assert (base_result.allowed, base_result.rejected) == (
        dag_result.allowed,
        dag_result.rejected,
    )
    # The DAG actually merged subtrees and replayed memos.
    assert dag_enforcer.engine.dag_shared_nodes >= 3
    assert dag_enforcer.engine.dag_saved_execs > total

    # --- cross-engine / cross-strategy bit-identity ---------------------
    eq_total = 48 if quick else 72
    by_strategy = {}
    for name, options in STRATEGIES.items():
        per_engine = {
            engine: run_equivalence_lane(
                _bench_template.clone(), bench_config, options, engine, eq_total
            )
            for engine in ENGINES
        }
        reference = per_engine["columnar"]
        for engine in ENGINES:
            assert per_engine[engine] == reference, (
                f"{name}: engine {engine} diverged from columnar"
            )
        by_strategy[name] = reference
        # The firing stream must exercise both paths: commits (allowed)
        # and reverts (rejected).
        assert any(reference[0]) and not all(reference[0]), (
            "equivalence stream did not mix decisions"
        )

    # Across strategies: decisions and final table state are identical;
    # violation *reports* differ by design (see module docstring).
    assert by_strategy["union"][0] == by_strategy["shared-dag"][0]
    assert by_strategy["union"][2] == by_strategy["shared-dag"][2]

    payload = {
        "total_queries": total,
        "n_patients": bench_config.n_patients,
        "union_ms": ms(base_mean),
        "shared_dag_ms": ms(dag_mean),
        "speedup": speedup,
        "shared_nodes": dag_enforcer.engine.dag_shared_nodes,
        "saved_execs": dag_enforcer.engine.dag_saved_execs,
        "floor": floor,
        "floor_asserted": True,
        "engines_verified": list(ENGINES),
        "quick": quick,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_policy_dag.json").write_text(
        json.dumps(payload, indent=2), encoding="utf-8"
    )
    publish(
        capsys,
        "BENCH_policy_dag",
        format_table(
            "Shared-subplan DAG — per-check policy evaluation (ms), "
            f"P1-P6, {total}-query cohort stream",
            ["strategy", "mean ms/check", "speedup"],
            [
                ("union (branch-at-a-time)", round(ms(base_mean), 3), 1.0),
                ("shared-dag", round(ms(dag_mean), 3), round(speedup, 2)),
            ],
            note=(
                f"Floor {floor}x asserted ({'quick' if quick else 'full'} "
                f"lane); {dag_enforcer.engine.dag_shared_nodes} shared "
                f"nodes, {dag_enforcer.engine.dag_saved_execs} saved "
                "executions. Decisions, violations, and table state "
                "verified bit-identical across row/vectorized/columnar; "
                "JSON artifact in results/BENCH_policy_dag.json."
            ),
        ),
    )

    assert speedup >= floor, payload
