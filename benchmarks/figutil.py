"""Shared helpers for the figure/table benchmarks.

Each ``bench_*.py`` reproduces one artifact of the paper's evaluation
(§5). The helpers here render aligned text tables, persist them under
``benchmarks/results/`` and echo them to the terminal (bypassing pytest's
capture) so the series appear in ``bench_output.txt``.

Scale note: the paper ran PostgreSQL on 21 GB of MIMIC-II; we run a pure
Python engine on a synthetic scale-down. Absolute milliseconds differ —
the *shapes* (who grows, who stays flat, who wins, where the crossover
falls) are the reproduction target, and each bench asserts them.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Sequence

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale factor for bench workloads; raise via REPRO_BENCH_SCALE=2 etc.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(n: int, minimum: int = 1) -> int:
    """Apply the global bench scale to a count."""
    return max(minimum, int(n * SCALE))


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "  ".join("-" * width for width in widths)
    parts = ["", "=" * len(title), title, "=" * len(title)]
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in rendered_rows)
    if note:
        parts.append("")
        parts.append(note)
    parts.append("")
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def publish(capsys, name: str, text: str) -> None:
    """Print a table to the real terminal and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    if capsys is not None:
        with capsys.disabled():
            print(text)
    else:  # pragma: no cover - manual runs
        print(text)


def ms(seconds: float) -> float:
    return seconds * 1000.0
