"""Global-tier throughput — cross-user policies must not serialize the
service.

The acceptance check for the global policy tier: the marketplace
*standard* contract — including the cross-user free-tier quota that the
per-uid rewrite (`sharded_contract`) exists to avoid — is pushed
through the gateway at 1 shard and at 4 process shards with
``--global-tier async``. The async tier answers the global check from
folded aggregator state under a short admission-lock section, so the
expensive shard-side local checks still parallelize: 4 shards must
deliver at least ``SPEEDUP_FLOOR``× the queries/second of 1.

The quota thresholds are set far above the stream so the *check* runs
on every admission but never trips mid-bench — a tripped global quota
denies everything at the tier for both shard counts, which measures
the denial fast-path, not scaling. A strict-mode lane is reported (not
floor-asserted): strict admissions serialize end-to-end by design, and
the printed ratio documents the price of bit-exactness.
"""

from __future__ import annotations

import json
import os

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.service import ServiceConfig, ShardedEnforcerService
from repro.workloads import (
    MarketplaceConfig,
    build_marketplace_database,
    make_marketplace_workload,
    round_robin,
    run_service_stream,
    standard_contract,
)

from figutil import RESULTS_DIR, format_table, publish, scaled

QUERIES_PER_UID = scaled(12, minimum=6)
CONFIG = MarketplaceConfig(
    n_subscribers=16,
    rate_window=100_000_000,
    free_tier_window=100_000_000,
    # The per-uid rate limit fires mid-run at any --quick scale (local
    # denials are part of the workload); the global quota is checked on
    # every admission but never trips.
    rate_limit=max(2, QUERIES_PER_UID // 2),
    free_tier_tuples=100_000_000,
)
CLIENT_THREADS = 16
SHARD_COUNTS = (1, 4)

#: Wall-clock floor for 4 process shards vs 1, both under the async
#: global tier. Only asserted with >= 4 usable CPUs.
SPEEDUP_FLOOR = 2.0


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def make_enforcer() -> Enforcer:
    return Enforcer(
        build_marketplace_database(CONFIG),
        standard_contract(CONFIG),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


def make_stream():
    workload = make_marketplace_workload(CONFIG)
    uids = list(range(1, CONFIG.n_subscribers + 1))
    return round_robin(
        list(workload.all().values()), uids, QUERIES_PER_UID * len(uids)
    )


def run_mode(stream, shards: int, tier: str, mode: str = "process"):
    service = ShardedEnforcerService(
        make_enforcer(),
        ServiceConfig(
            shards=shards,
            workers_mode=mode,
            queue_depth=max(64, len(stream)),
            routing="modulo",
            global_tier=tier,
            # Full evaluation on every shard-side check: scaling must
            # come from cores, not from caches absorbing repeats.
            decision_cache=False,
            incremental=False,
        ),
    )
    try:
        result = run_service_stream(
            service, stream, client_threads=CLIENT_THREADS
        )
        service.flush_global()
        # At 1 shard the tier is inactive by design: the single shard
        # enforces the global quota locally (it *is* the oracle).
        return result, service.stats().get("global")
    finally:
        service.drain()


def test_global_tier_scales_wall_clock(capsys):
    stream = make_stream()
    cpus = usable_cpus()

    single, single_stats = run_mode(stream, SHARD_COUNTS[0], "async")
    sharded, sharded_stats = run_mode(stream, SHARD_COUNTS[-1], "async")
    strict, strict_stats = run_mode(stream, SHARD_COUNTS[-1], "strict")

    for result in (single, sharded, strict):
        assert result.total == len(stream)
        assert result.rejected > 0  # the local rate limit fires
    # The global quota was *checked* on every admission and never
    # tripped — the stream's denials are all shard-local.
    assert single_stats is None  # 1 shard enforces the quota locally
    assert sharded_stats["checks"]["async"] == len(stream)
    assert sharded_stats["denials"]["async"] == 0
    assert strict_stats["checks"]["strict"] == len(stream)
    assert strict_stats["denials"]["strict"] == 0

    speedup = sharded.qps / single.qps
    strict_ratio = strict.qps / sharded.qps
    floor_asserted = cpus >= max(SHARD_COUNTS)

    rows = [
        [
            f"{shards} ({tier})",
            result.total,
            result.allowed,
            result.rejected,
            result.overloads,
            stats["delta_frames"] if stats else "-",
            round(result.qps, 1),
            round(result.elapsed, 2),
        ]
        for shards, tier, result, stats in (
            (SHARD_COUNTS[0], "async", single, single_stats),
            (SHARD_COUNTS[-1], "async", sharded, sharded_stats),
            (SHARD_COUNTS[-1], "strict", strict, strict_stats),
        )
    ]
    publish(
        capsys,
        "global_policies",
        format_table(
            "Global-tier service throughput — marketplace standard "
            f"contract incl. cross-user quota ({CONFIG.n_subscribers} "
            f"subscribers, {QUERIES_PER_UID} queries each, "
            f"{CLIENT_THREADS} clients, process shards)",
            ["shards", "queries", "allowed", "denied", "429-retries",
             "deltas", "qps", "elapsed s"],
            rows,
            note=(
                f"async speedup {speedup:.2f}x at 4 shards vs 1 "
                f"(floor {SPEEDUP_FLOOR}x "
                f"{'asserted' if floor_asserted else 'not asserted: < 4 CPUs'}); "
                f"strict mode runs at {strict_ratio:.2f}x the async qps "
                "(admissions serialize end-to-end for oracle "
                f"bit-exactness), on {cpus} usable CPUs"
            ),
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_global_policies.json").write_text(
        json.dumps(
            {
                "bench": "global_policies",
                "workers_mode": "process",
                "usable_cpus": cpus,
                "queries": len(stream),
                "client_threads": CLIENT_THREADS,
                "speedup": round(speedup, 3),
                "strict_over_async": round(strict_ratio, 3),
                "floor": SPEEDUP_FLOOR,
                "floor_asserted": floor_asserted,
                "runs": [
                    {
                        "shards": shards,
                        "global_tier": tier,
                        "qps": round(result.qps, 2),
                        "elapsed_s": round(result.elapsed, 3),
                        "total": result.total,
                        "allowed": result.allowed,
                        "denied": result.rejected,
                        "overloads": result.overloads,
                        "global_checks": (
                            stats["checks"]["async"]
                            + stats["checks"]["strict"]
                            if stats
                            else None
                        ),
                        "delta_frames": (
                            stats["delta_frames"] if stats else None
                        ),
                    }
                    for shards, tier, result, stats in (
                        (SHARD_COUNTS[0], "async", single, single_stats),
                        (SHARD_COUNTS[-1], "async", sharded, sharded_stats),
                        (SHARD_COUNTS[-1], "strict", strict, strict_stats),
                    )
                ],
            },
            indent=2,
        )
        + "\n"
    )

    if floor_asserted:
        assert speedup >= SPEEDUP_FLOOR, (
            f"4 async-tier process shards delivered {speedup:.2f}x the "
            f"single-shard qps (floor {SPEEDUP_FLOOR}x on {cpus} CPUs): "
            "the global tier is serializing the service"
        )
