"""Figure 4 — interleaved policy evaluation, on vs off.

Paper protocol: each policy P1–P6 enforced alone on query W4, for uid 0
and uid 1, with DataLawyer fully optimized vs the same configuration with
interleaved evaluation disabled ("no int").

Paper shape: for uid 0, interleaving prunes each policy right after the
cheap Users log — the run time drops by more than half versus "no int"
(which must generate provenance before concluding anything), and the
residual overhead is a few percent of query time. For uid 1 interleaving
cannot prune, so it is slightly *slower* (it evaluates a chain of partial
policies instead of one full policy), but the difference is small.
"""

from __future__ import annotations

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.workloads import PolicyParams, make_policy, repeat_query, run_stream

from figutil import format_table, ms, publish, scaled

POLICIES = ["P1", "P2", "P3", "P4", "P5", "P6"]
STEADY = scaled(12)


def steady_mean(db, policy_name, params, sql, uid, interleaved):
    options = EnforcerOptions.datalawyer(
        interleaved=interleaved,
        eval_strategy="serial" if not interleaved else "union",
    )
    enforcer = Enforcer(
        db,
        [make_policy(policy_name, params)],
        clock=SimulatedClock(default_step_ms=10),
        options=options,
    )
    result = run_stream(enforcer, repeat_query(sql, uid, STEADY))
    assert result.rejected == 0
    return (
        result.metrics.mean_total_seconds(STEADY // 2),
        result.metrics.mean_phase_seconds("query", STEADY // 2),
    )


def test_fig4_interleaved(benchmark, capsys, bench_db, bench_config, bench_workload):
    params = PolicyParams.for_config(bench_config)
    sql = bench_workload["W4"]

    rows = []
    data = {}
    for policy_name in POLICIES:
        cells = [policy_name]
        for uid in (0, 1):
            for interleaved in (True, False):
                total, query = steady_mean(
                    bench_db.clone(), policy_name, params, sql, uid, interleaved
                )
                data[(policy_name, uid, interleaved)] = (total, query)
                cells.append(round(ms(total), 3))
        rows.append(tuple(cells))

    publish(
        capsys,
        "fig4",
        format_table(
            "Figure 4 — W4 steady-state policy+query time (ms), interleaved "
            "vs no-interleave ('no int')",
            [
                "policy",
                "uid0",
                "uid0 no-int",
                "uid1",
                "uid1 no-int",
            ],
            rows,
            note=(
                "Paper shape: for uid 0 interleaving cuts runtime by more "
                "than half on the provenance policies (P3-P6) and its "
                "overhead over plain query time is a few percent; for uid 1 "
                "the interleaving overhead is small."
            ),
        ),
    )

    # --- shape assertions -------------------------------------------------
    for policy_name in ("P3", "P4", "P5", "P6"):
        with_int, _ = data[(policy_name, 0, True)]
        without_int, _ = data[(policy_name, 0, False)]
        # uid 0: interleaving avoids provenance → much faster.
        assert with_int < without_int * 0.75, (policy_name, with_int, without_int)

    # uid 0 with interleaving: overhead within ~20% of query time.
    for policy_name in POLICIES:
        total, query = data[(policy_name, 0, True)]
        assert total - query <= query * 0.25 + 0.0005, (policy_name, total, query)

    # uid 1: interleaving costs little relative to no-int (within 40%).
    for policy_name in POLICIES:
        with_int, _ = data[(policy_name, 1, True)]
        without_int, _ = data[(policy_name, 1, False)]
        assert with_int <= without_int * 1.4 + 0.002, (
            policy_name,
            with_int,
            without_int,
        )

    # Benchmark: uid-0 steady state with interleaving on P5.
    enforcer = Enforcer(
        bench_db.clone(),
        [make_policy("P5", params)],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    run_stream(enforcer, repeat_query(sql, 0, 3))
    benchmark.pedantic(lambda: enforcer.submit(sql, uid=0), rounds=8, iterations=1)
