"""Figure 3 — the three log-compaction phases (mark / delete / insert).

Paper protocol: for the time-dependent policies P1, P5 and P6 (the
time-independent P2/P3/P4 never prune, so they are absent from the
figure), run each query W1–W4 as uid 1 and measure the time DataLawyer
spends in each compaction phase, plus compaction's share of the total
policy-checking + query time.

Paper shape: the *mark* phase (running the witness queries over the log)
dominates the other two phases across all configurations; compaction is a
noticeable share for the provenance policies on short queries, and the
whole cost still pays off within tens of queries (Figure 1/2 show the
payoff).
"""

from __future__ import annotations

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.workloads import PolicyParams, make_policy, repeat_query, run_stream

from figutil import format_table, ms, publish, scaled

POLICIES = ["P1", "P5", "P6"]
QUERIES = ["W1", "W2", "W3", "W4"]
STEADY = scaled(12)


@pytest.mark.parametrize("policy_name", POLICIES)
def test_fig3_compaction_phases(
    benchmark, capsys, bench_db, bench_config, bench_workload, policy_name
):
    params = PolicyParams.for_config(bench_config)
    rows = []
    dominance = []
    for query_name in QUERIES:
        enforcer = Enforcer(
            bench_db.clone(),
            [make_policy(policy_name, params)],
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(),
        )
        result = run_stream(
            enforcer,
            repeat_query(bench_workload[query_name], uid=1, count=STEADY),
        )
        assert result.rejected == 0
        metrics = result.metrics
        half = STEADY // 2
        mark = metrics.mean_phase_seconds("compact_mark", half)
        delete = metrics.mean_phase_seconds("compact_delete", half)
        insert = metrics.mean_phase_seconds("compact_insert", half)
        total = metrics.mean_total_seconds(half)
        share = (mark + delete + insert) / total if total else 0.0
        rows.append(
            (
                f"{policy_name}.{query_name}",
                round(ms(mark), 3),
                round(ms(delete), 3),
                round(ms(insert), 3),
                f"{share * 100:.1f}%",
            )
        )
        dominance.append((query_name, mark, delete, insert))

    publish(
        capsys,
        f"fig3_{policy_name}",
        format_table(
            f"Figure 3 — log-compaction phases for {policy_name} "
            "(uid 1, steady state, ms)",
            ["config", "mark", "delete", "insert", "share of total"],
            rows,
            note=(
                "Paper shape: the mark phase (witness queries over the "
                "log) dominates delete and insert in every configuration."
            ),
        ),
    )

    # --- shape assertion: marking dominates -------------------------------
    for query_name, mark, delete, insert in dominance:
        assert mark >= delete, (policy_name, query_name, mark, delete)
        assert mark >= insert, (policy_name, query_name, mark, insert)

    # Steady-state compaction cost for the benchmark table (W2).
    enforcer = Enforcer(
        bench_db.clone(),
        [make_policy(policy_name, params)],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    sql = bench_workload["W2"]
    run_stream(enforcer, repeat_query(sql, uid=1, count=5))
    benchmark.pedantic(lambda: enforcer.submit(sql, uid=1), rounds=10, iterations=1)


def test_fig3_time_independent_policies_skip_compaction(
    benchmark, capsys, bench_db, bench_config, bench_workload
):
    """P2/P3/P4 are flagged time-independent: no compaction work at all
    (the reason they are absent from the paper's Figure 3)."""
    params = PolicyParams.for_config(bench_config)
    rows = []
    for policy_name in ("P2", "P3", "P4"):
        enforcer = Enforcer(
            bench_db.clone(),
            [make_policy(policy_name, params)],
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(),
        )
        result = run_stream(
            enforcer, repeat_query(bench_workload["W2"], uid=1, count=6)
        )
        compaction = sum(
            entry.compaction_seconds for entry in result.metrics.entries
        )
        rows.append((policy_name, round(ms(compaction), 4)))
        assert compaction < 0.001, (policy_name, compaction)
        assert enforcer.store.total_live_size() == 0

    publish(
        capsys,
        "fig3_time_independent",
        format_table(
            "Figure 3 (complement) — time-independent policies do zero "
            "compaction work over 6 queries",
            ["policy", "total compaction (ms)"],
            rows,
        ),
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
