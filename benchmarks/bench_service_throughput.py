"""Service throughput — real wall-clock scaling with process shards.

The tentpole acceptance check for ``repro.service``: the same concurrent
marketplace workload is pushed through the gateway at 1 shard and at 4
shards with ``workers_mode="process"`` — **no modeled sleeps** — and 4
shards must deliver at least ``SPEEDUP_FLOOR``× the queries/second while
producing decisions identical to a single-enforcer rerun of each uid's
sequence. Policy checking is pure Python and CPU-bound (the decision
cache and incremental maintenance are disabled here so every check pays
full evaluation), so this floor is only reachable when shards actually
escape the GIL: worker processes on separate cores.

The floor is asserted when the machine has >= 4 usable CPUs (CI runners
do); on smaller boxes the bench still runs and still proves decision
equivalence, but reports the speedup without failing — one core cannot
scale wall-clock no matter the architecture.

DEPRECATED — modeled dispatch: the original PR 1 version of this bench
"scaled" thread shards by sleeping a modeled backend round trip in each
worker (sleeps release the GIL, so any shard count "scales"). That
measured the model, not the middleware. It survives behind the
``--modeled`` flag strictly as a regression check on the thread-mode
admission machinery; its numbers must never be quoted as scaling
results.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.service import ServiceConfig, ShardedEnforcerService
from repro.workloads import (
    MarketplaceConfig,
    build_marketplace_database,
    make_marketplace_workload,
    round_robin,
    run_service_stream,
    sharded_contract,
    split_by_uid,
)

from figutil import RESULTS_DIR, format_table, ms, publish, scaled

CONFIG = MarketplaceConfig(
    n_subscribers=16,
    # windows far wider than any run: decisions depend on per-uid counts
    # only, which is what makes the 1-shard / 4-shard / baseline runs
    # comparable decision-for-decision.
    rate_window=100_000_000,
    free_tier_window=100_000_000,
    # Thresholds scale with the stream so the contract still fires
    # mid-run under --quick / REPRO_BENCH_SCALE < 1.
    rate_limit=scaled(30, minimum=2),
    free_tier_tuples=scaled(2_000, minimum=100),
)
QUERIES_PER_UID = scaled(12, minimum=6)
CLIENT_THREADS = 16
SHARD_COUNTS = (1, 4)

#: Wall-clock floor for 4 process shards vs 1 — real parallel checking,
#: not modeled sleeps. Only asserted with >= 4 usable CPUs.
SPEEDUP_FLOOR = 2.5

#: Floor for the deprecated modeled thread-mode lane (--modeled).
MODELED_SPEEDUP_FLOOR = 2.0


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def make_enforcer() -> Enforcer:
    return Enforcer(
        build_marketplace_database(CONFIG),
        sharded_contract(CONFIG),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


def make_stream():
    workload = make_marketplace_workload(CONFIG)
    uids = list(range(1, CONFIG.n_subscribers + 1))
    return round_robin(
        list(workload.all().values()), uids, QUERIES_PER_UID * len(uids)
    )


def assert_decisions_match_baseline(stream, runs) -> None:
    """Every run's per-uid decision sequence == a fresh single-enforcer
    rerun: sharding (and the process boundary) changes throughput, never
    verdicts."""
    per_uid = split_by_uid(stream)
    for uid, queries in per_uid.items():
        baseline = make_enforcer()
        expected = [baseline.submit(sql, uid=uid) for sql in queries]
        for shards, result in runs.items():
            got = result.decisions[uid]
            assert len(got) == len(expected)
            for want, have in zip(expected, got):
                assert have.allowed == want.allowed, (shards, uid)
                assert sorted(v.policy_name for v in have.violations) == (
                    sorted(v.policy_name for v in want.violations)
                )
                if want.allowed:
                    assert sorted(have.result.rows) == sorted(want.result.rows)


def run_mode(stream, shards: int, mode: str):
    service = ShardedEnforcerService(
        make_enforcer(),
        ServiceConfig(
            shards=shards,
            workers_mode=mode,
            queue_depth=max(64, len(stream)),
            routing="modulo",
            # Full evaluation on every check: scaling must come from
            # cores, not from caches absorbing the repeat queries.
            decision_cache=False,
            incremental=False,
        ),
    )
    try:
        return run_service_stream(
            service, stream, client_threads=CLIENT_THREADS
        )
    finally:
        service.drain()


def test_process_sharding_scales_wall_clock(capsys):
    stream = make_stream()
    cpus = usable_cpus()

    runs = {
        shards: run_mode(stream, shards, "process")
        for shards in SHARD_COUNTS
    }
    # Control: 4 thread shards see the *same* log partitioning but stay
    # behind one GIL, so process-vs-thread at equal shard count isolates
    # the multicore effect from the smaller-per-shard-logs effect.
    control = run_mode(stream, SHARD_COUNTS[-1], "thread")

    assert_decisions_match_baseline(
        stream, {**runs, "thread-control": control}
    )

    single, sharded = runs[SHARD_COUNTS[0]], runs[SHARD_COUNTS[-1]]
    assert single.total == sharded.total == control.total == len(stream)
    assert sharded.rejected > 0  # the contract fires under this stream
    speedup = sharded.qps / single.qps
    gil_escape = sharded.qps / control.qps
    floor_asserted = cpus >= max(SHARD_COUNTS)

    rows = [
        [
            f"{shards} ({mode})",
            result.total,
            result.allowed,
            result.rejected,
            result.overloads,
            round(result.qps, 1),
            round(result.elapsed, 2),
        ]
        for shards, mode, result in (
            (SHARD_COUNTS[0], "process", single),
            (SHARD_COUNTS[-1], "process", sharded),
            (SHARD_COUNTS[-1], "thread", control),
        )
    ]
    publish(
        capsys,
        "service_throughput",
        format_table(
            "Process-shard service throughput — marketplace contract "
            f"({CONFIG.n_subscribers} subscribers, "
            f"{QUERIES_PER_UID} queries each, {CLIENT_THREADS} clients, "
            "un-modeled CPU-bound checks)",
            ["shards", "queries", "allowed", "denied", "429-retries",
             "qps", "elapsed s"],
            rows,
            note=(
                f"wall-clock speedup {speedup:.2f}x vs 1 shard, "
                f"{gil_escape:.2f}x vs 4 thread shards (GIL escape), on "
                f"{cpus} usable CPUs (floor {SPEEDUP_FLOOR}x "
                f"{'asserted' if floor_asserted else 'not asserted: < 4 CPUs'}); "
                "decisions identical to the single-enforcer baseline in "
                "every run"
            ),
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service_scaling.json").write_text(
        json.dumps(
            {
                "bench": "service_scaling",
                "workers_mode": "process",
                "usable_cpus": cpus,
                "queries": len(stream),
                "client_threads": CLIENT_THREADS,
                "speedup": round(speedup, 3),
                "gil_escape_vs_threads": round(gil_escape, 3),
                "floor": SPEEDUP_FLOOR,
                "floor_asserted": floor_asserted,
                "runs": [
                    {
                        "shards": shards,
                        "workers_mode": mode,
                        "qps": round(result.qps, 2),
                        "elapsed_s": round(result.elapsed, 3),
                        "total": result.total,
                        "allowed": result.allowed,
                        "denied": result.rejected,
                        "overloads": result.overloads,
                    }
                    for shards, mode, result in (
                        (SHARD_COUNTS[0], "process", single),
                        (SHARD_COUNTS[-1], "process", sharded),
                        (SHARD_COUNTS[-1], "thread", control),
                    )
                ],
            },
            indent=2,
        ),
        encoding="utf-8",
    )

    if floor_asserted:
        assert speedup >= SPEEDUP_FLOOR, (
            f"4-process-shard wall-clock speedup {speedup:.2f}x below "
            f"{SPEEDUP_FLOOR}x on {cpus} CPUs"
        )


def measure_check_seconds() -> float:
    """Mean in-process enforcement time over one round of the workload."""
    enforcer = make_enforcer()
    workload = make_marketplace_workload(CONFIG)
    samples = []
    for repeat in range(3):
        for uid, sql in enumerate(workload.all().values(), start=1):
            start = time.perf_counter()
            enforcer.submit(sql, uid=uid)
            samples.append(time.perf_counter() - start)
    return sum(samples) / len(samples)


def test_modeled_dispatch_legacy(capsys, request):
    """DEPRECATED thread-mode lane: scaling here comes from modeled
    dispatch sleeps, not from parallel checking. Kept only to regress
    the thread-mode admission machinery; run with ``--modeled``."""
    if not request.config.getoption("--modeled"):
        pytest.skip(
            "modeled-dispatch lane is deprecated (sleep-based pseudo-"
            "scaling); pass --modeled to run it anyway"
        )

    check_seconds = measure_check_seconds()
    dispatch = check_seconds * 5
    stream = make_stream()

    runs = {}
    for shards in SHARD_COUNTS:
        service = ShardedEnforcerService(
            make_enforcer(),
            ServiceConfig(
                shards=shards,
                queue_depth=max(64, len(stream)),
                dispatch_seconds=dispatch,
                routing="modulo",
            ),
        )
        runs[shards] = run_service_stream(
            service, stream, client_threads=CLIENT_THREADS
        )
        service.drain()

    assert_decisions_match_baseline(stream, runs)

    single, sharded = runs[SHARD_COUNTS[0]], runs[SHARD_COUNTS[-1]]
    assert single.total == sharded.total == len(stream)
    speedup = sharded.qps / single.qps
    publish(
        capsys,
        "service_throughput_modeled",
        format_table(
            "[DEPRECATED] Modeled-dispatch thread-shard lane",
            ["shards", "queries", "qps", "elapsed s"],
            [
                [
                    shards,
                    runs[shards].total,
                    round(runs[shards].qps, 1),
                    round(runs[shards].elapsed, 2),
                ]
                for shards in SHARD_COUNTS
            ],
            note=(
                f"modeled dispatch {ms(dispatch):.2f} ms/query sleeps — "
                "NOT a scaling result; see "
                "test_process_sharding_scales_wall_clock for the real "
                f"wall-clock numbers. speedup {speedup:.2f}x"
            ),
        ),
    )
    assert speedup >= MODELED_SPEEDUP_FLOOR
