"""Service throughput — sharded gateway scaling on the marketplace.

The tentpole acceptance check for ``repro.service``: the same concurrent
marketplace workload is pushed through the gateway at 1 shard and at 4
shards, and 4 shards must deliver at least 2× the queries/second while
producing decisions identical to a single-enforcer rerun of each uid's
sequence.

Modeling note: policy checking itself is pure Python, so threads alone
cannot overlap it (the GIL). What shards parallelize in a real deployment
is the enforcement backend round trip — the DBMS executing the policy
queries. As with :data:`repro.workloads.runner.DISPATCH_SECONDS`, we make
that explicit: each shard worker holds its slot for a modeled dispatch
wait (sized at ~5× the measured in-process check time, i.e. a backend
where enforcement SQL dominates), which sleeps outside the interpreter
lock exactly like a socket wait would. Shard counts then scale wall-clock
throughput the way Figure 7-style middleware scaling does.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.service import ServiceConfig, ShardedEnforcerService
from repro.workloads import (
    MarketplaceConfig,
    build_marketplace_database,
    make_marketplace_workload,
    round_robin,
    run_service_stream,
    sharded_contract,
    split_by_uid,
)

from figutil import format_table, ms, publish, scaled

CONFIG = MarketplaceConfig(
    n_subscribers=16,
    # windows far wider than any run: decisions depend on per-uid counts
    # only, which is what makes the 1-shard / 4-shard / baseline runs
    # comparable decision-for-decision.
    rate_window=100_000_000,
    free_tier_window=100_000_000,
    # Thresholds scale with the stream so the contract still fires
    # mid-run under --quick / REPRO_BENCH_SCALE < 1.
    rate_limit=scaled(30, minimum=2),
    free_tier_tuples=scaled(2_000, minimum=100),
)
QUERIES_PER_UID = scaled(12, minimum=3)
CLIENT_THREADS = 16
SHARD_COUNTS = (1, 4)
SPEEDUP_FLOOR = 2.0


def make_enforcer() -> Enforcer:
    return Enforcer(
        build_marketplace_database(CONFIG),
        sharded_contract(CONFIG),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


def make_stream():
    workload = make_marketplace_workload(CONFIG)
    uids = list(range(1, CONFIG.n_subscribers + 1))
    return round_robin(
        list(workload.all().values()), uids, QUERIES_PER_UID * len(uids)
    )


def measure_check_seconds() -> float:
    """Mean in-process enforcement time over one round of the workload."""
    enforcer = make_enforcer()
    workload = make_marketplace_workload(CONFIG)
    samples = []
    for repeat in range(3):
        for uid, sql in enumerate(workload.all().values(), start=1):
            start = time.perf_counter()
            enforcer.submit(sql, uid=uid)
            samples.append(time.perf_counter() - start)
    return sum(samples) / len(samples)


def test_sharding_scales_throughput(capsys):
    check_seconds = measure_check_seconds()
    dispatch = check_seconds * 5
    stream = make_stream()

    runs = {}
    for shards in SHARD_COUNTS:
        service = ShardedEnforcerService(
            make_enforcer(),
            ServiceConfig(
                shards=shards,
                queue_depth=max(64, len(stream)),
                dispatch_seconds=dispatch,
                routing="modulo",
            ),
        )
        runs[shards] = run_service_stream(
            service, stream, client_threads=CLIENT_THREADS
        )
        service.drain()

    # -- identical decisions at every shard count, and vs a fresh
    #    single-enforcer rerun of each uid's sequence ------------------
    per_uid = split_by_uid(stream)
    for uid, queries in per_uid.items():
        baseline = make_enforcer()
        expected = [baseline.submit(sql, uid=uid) for sql in queries]
        for shards, result in runs.items():
            got = result.decisions[uid]
            assert len(got) == len(expected)
            for want, have in zip(expected, got):
                assert have.allowed == want.allowed, (shards, uid)
                assert sorted(v.policy_name for v in have.violations) == (
                    sorted(v.policy_name for v in want.violations)
                )
                if want.allowed:
                    assert sorted(have.result.rows) == sorted(want.result.rows)

    single, sharded = runs[SHARD_COUNTS[0]], runs[SHARD_COUNTS[-1]]
    assert single.total == sharded.total == len(stream)
    assert sharded.rejected > 0  # the contract fires under this stream
    speedup = sharded.qps / single.qps

    rows = [
        [
            shards,
            runs[shards].total,
            runs[shards].allowed,
            runs[shards].rejected,
            runs[shards].overloads,
            round(runs[shards].qps, 1),
            round(runs[shards].elapsed, 2),
        ]
        for shards in SHARD_COUNTS
    ]
    publish(
        capsys,
        "service_throughput",
        format_table(
            "Sharded service throughput — marketplace contract "
            f"({CONFIG.n_subscribers} subscribers, "
            f"{QUERIES_PER_UID} queries each, {CLIENT_THREADS} clients)",
            ["shards", "queries", "allowed", "denied", "429-retries",
             "qps", "elapsed s"],
            rows,
            note=(
                f"modeled dispatch {ms(dispatch):.2f} ms/query "
                f"(5x the {ms(check_seconds):.2f} ms in-process check); "
                f"speedup {speedup:.2f}x — decisions identical to the "
                "single-enforcer baseline at both shard counts"
            ),
        ),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"4-shard speedup {speedup:.2f}x below {SPEEDUP_FLOOR}x"
    )
