"""Figure 2 — per-policy time breakdown for DataLawyer vs NoOpt.

Paper protocol: each of P1–P6 enforced alone while one query repeats;
reported as stacked bars of (query, usage tracking, policy evaluation,
compaction) time:

- 2a: W4 (long query), uid 0 — interleaving prunes after the Users log;
- 2b: W4, uid 1 — full evaluation incl. provenance;
- 2c: W2 (short query), uid 1 — overhead visible on interactive queries.

NoOpt is sampled at its 1st and Nth query (its overhead grows);
DataLawyer at steady state. Paper shape: P1/P2 are nearly free; P3–P6 pay
for provenance (~query cost) for uid 1; NoOpt's Nth query exceeds its 1st;
DataLawyer stays at a low constant, far below NoOpt's Nth for short
queries.
"""

from __future__ import annotations

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.workloads import PolicyParams, make_policy, repeat_query, run_stream

from figutil import format_table, ms, publish, scaled

POLICIES = ["P1", "P2", "P3", "P4", "P5", "P6"]

SCENARIOS = {
    "2a": {"query": "W4", "uid": 0, "noopt_n": scaled(10)},
    "2b": {"query": "W4", "uid": 1, "noopt_n": scaled(10)},
    "2c": {"query": "W2", "uid": 1, "noopt_n": scaled(150)},
}


def run_system(db, policy_name, params, options, sql, uid, count):
    enforcer = Enforcer(
        db,
        [make_policy(policy_name, params)],
        clock=SimulatedClock(default_step_ms=10),
        options=options,
    )
    result = run_stream(enforcer, repeat_query(sql, uid, count))
    assert result.rejected == 0, policy_name
    return result.metrics


@pytest.mark.parametrize("figure", sorted(SCENARIOS))
def test_fig2_breakdown(benchmark, capsys, bench_db, bench_config, bench_workload, figure):
    scenario = SCENARIOS[figure]
    params = PolicyParams.for_config(bench_config)
    sql = bench_workload[scenario["query"]]
    uid = scenario["uid"]
    noopt_n = scenario["noopt_n"]
    dl_count = scaled(14)

    rows = []
    tails = {}
    growth = {}
    for policy_name in POLICIES:
        noopt_metrics = run_system(
            bench_db.clone(),
            policy_name,
            params,
            EnforcerOptions.noopt(),
            sql,
            uid,
            noopt_n,
        )
        dl_metrics = run_system(
            bench_db.clone(),
            policy_name,
            params,
            EnforcerOptions.datalawyer(),
            sql,
            uid,
            dl_count,
        )
        noopt_first = noopt_metrics.entries[0].total_seconds
        noopt_last = noopt_metrics.entries[-1].total_seconds
        steady = dl_metrics.mean_breakdown(start=dl_count // 2)
        dl_total = sum(steady.values())
        rows.append(
            (
                policy_name,
                round(ms(noopt_first), 3),
                round(ms(noopt_last), 3),
                round(ms(steady["query"]), 3),
                round(ms(steady["tracking"]), 3),
                round(ms(steady["policy_eval"]), 3),
                round(ms(steady["compaction"]), 3),
                round(ms(dl_total), 3),
            )
        )
        tails[policy_name] = (noopt_last, dl_total, steady)
        # Warm-window growth of NoOpt's policy-evaluation phase: mean of
        # queries 3-8 vs the last five (skips cold-start noise).
        growth[policy_name] = (
            noopt_metrics.mean_phase_seconds("policy_eval", 2, 7),
            noopt_metrics.mean_phase_seconds("policy_eval", noopt_n - 5),
        )

    publish(
        capsys,
        f"fig{figure}",
        format_table(
            f"Figure {figure} — {scenario['query']}, uid={uid}: "
            f"NoOpt (1st, {noopt_n}th query) vs DataLawyer steady state (ms)",
            [
                "policy",
                "NoOpt 1st",
                f"NoOpt {noopt_n}th",
                "DL query",
                "DL tracking",
                "DL policy",
                "DL compaction",
                "DL total",
            ],
            rows,
            note=(
                "Paper shape: P1/P2 overheads are negligible; P3-P6 pay for "
                "provenance when the policy applies (uid 1); NoOpt's Nth "
                "query exceeds its 1st; DataLawyer stays constant."
            ),
        ),
    )

    # --- shape assertions -------------------------------------------------
    # Cheap policies (P1, P2): DataLawyer total within ~60% of query time.
    for cheap in ("P1", "P2"):
        _, total, steady = tails[cheap]
        assert total <= steady["query"] * 1.6 + 0.004, (figure, cheap, steady)

    # Expensive provenance policies for uid 1: tracking is substantial
    # (provenance costs about a query execution).
    if uid == 1:
        for costly in ("P3", "P4", "P5", "P6"):
            _, _, steady = tails[costly]
            assert steady["tracking"] >= steady["query"] * 0.4, (figure, costly)
    else:
        # uid 0: interleaving avoids provenance entirely — tiny overhead.
        for policy_name in POLICIES:
            _, total, steady = tails[policy_name]
            assert total - steady["query"] <= steady["query"] * 0.5 + 0.004

    # NoOpt's policy-evaluation time grows with the accumulating log for
    # provenance policies on the short query (the paper's 8.8x for P3 on
    # W2 between its 1st and 400th query).
    if figure == "2c":
        for costly in ("P3", "P5", "P6"):
            early, late = growth[costly]
            assert late > early, (costly, early, late)

    # Record steady-state DataLawyer submit for the benchmark table (P6).
    enforcer = Enforcer(
        bench_db.clone(),
        [make_policy("P6", params)],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    run_stream(enforcer, repeat_query(sql, uid, 5))
    benchmark.pedantic(lambda: enforcer.submit(sql, uid=uid), rounds=8, iterations=1)
