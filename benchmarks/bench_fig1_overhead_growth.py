"""Figure 1 — policy+query evaluation time per batch, NoOpt vs DataLawyer.

Paper protocol: policy P6 (the most expensive: provenance, 300 ms sliding
window) with the fastest query W1, submitted in batches, for uid 0 (the
policy never applies — interleaving prunes it after the cheap Users log)
and uid 1 (full evaluation every query). The paper's claim: NoOpt's
per-batch time grows continuously with the usage log while DataLawyer's
stabilizes to a constant after a short ramp-up.

Reproduced series: mean per-query time per batch for the four
(system × uid) combinations, plus DataLawyer with incremental
maintenance on — P6 is incrementalizable, so its per-batch cost must
stay flat like the stock DataLawyer curve (the win over per-check log
scans, not over compaction, which already keeps this log small).
"""

from __future__ import annotations

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.workloads import PolicyParams, make_policy, repeat_query, run_stream

from figutil import format_table, ms, publish, scaled

# Floors keep the growth shape measurable under --quick: the head/tail
# comparison needs enough batches (and queries per batch) for NoOpt's
# log-proportional cost to actually grow between the two windows. The
# horizon must also reach past the NoOpt/DataLawyer crossover: the
# vectorized engine scans the log fast enough that NoOpt stays ahead of
# DataLawyer's flat per-query cost for the first few hundred log entries.
BATCH = scaled(60, minimum=48)
BATCHES = scaled(20, minimum=16)


def make_enforcer(db, options, params):
    return Enforcer(
        db,
        [make_policy("P6", params)],
        clock=SimulatedClock(default_step_ms=10),
        options=options,
    )


def run_batches(enforcer, sql, uid):
    means = []
    for _ in range(BATCHES):
        result = run_stream(enforcer, repeat_query(sql, uid, BATCH))
        assert result.rejected == 0
        means.append(ms(result.metrics.mean_total_seconds()))
    return means


@pytest.mark.parametrize("uid", [0, 1])
def test_fig1_overhead_growth(
    request, benchmark, capsys, bench_db, bench_config, bench_workload, uid
):
    params = PolicyParams.for_config(bench_config)
    sql = bench_workload["W1"]

    noopt = make_enforcer(bench_db.clone(), EnforcerOptions.noopt(), params)
    datalawyer = make_enforcer(
        bench_db.clone(), EnforcerOptions.datalawyer(), params
    )
    incremental = make_enforcer(
        bench_db.clone(), EnforcerOptions.datalawyer(incremental=True), params
    )
    incremental.warm_incremental()

    noopt_series = run_batches(noopt, sql, uid)
    dl_series = run_batches(datalawyer, sql, uid)
    inc_series = run_batches(incremental, sql, uid)

    rows = [
        (index + 1, round(noopt_ms, 3), round(dl_ms, 3), round(inc_ms, 3))
        for index, (noopt_ms, dl_ms, inc_ms) in enumerate(
            zip(noopt_series, dl_series, inc_series)
        )
    ]
    publish(
        capsys,
        f"fig1_uid{uid}",
        format_table(
            f"Figure 1 — P6 + W1, uid={uid}: mean per-query time per batch "
            f"({BATCH} queries/batch)",
            ["batch", "NoOpt (ms)", "DataLawyer (ms)", "DL+incremental (ms)"],
            rows,
            note=(
                "Paper shape: NoOpt grows continuously with the usage log; "
                "DataLawyer stabilizes after a short ramp-up and ends far "
                "below NoOpt. Incremental maintenance keeps the same flat "
                "shape with identical decisions."
            ),
        ),
    )

    # --- shape assertions -------------------------------------------------
    # NoOpt grows: last third is clearly slower than the first third.
    noopt_head = sum(noopt_series[:3]) / 3
    noopt_tail = sum(noopt_series[-3:]) / 3
    assert noopt_tail > noopt_head * 1.5, (noopt_head, noopt_tail)

    # DataLawyer stays flat-ish: tail within 2x of its early steady state.
    dl_head = sum(dl_series[1:4]) / 3  # skip the first (ramp-up) batch
    dl_tail = sum(dl_series[-3:]) / 3
    assert dl_tail < dl_head * 2 + 0.5, (dl_head, dl_tail)

    # Incremental maintenance keeps the flat shape too (it replaces the
    # per-check log aggregation, so it cannot grow with the log).
    inc_head = sum(inc_series[1:4]) / 3
    inc_tail = sum(inc_series[-3:]) / 3
    assert inc_tail < inc_head * 2 + 0.5, (inc_head, inc_tail)

    # And DataLawyer ends below NoOpt. The smoke lane's shortened horizon
    # stops before the crossover (NoOpt's vectorized log scans stay ahead
    # of DataLawyer's flat cost for the first few hundred entries), so
    # this endpoint comparison is asserted at full scale only.
    if not request.config.getoption("--quick", default=False):
        assert dl_tail < noopt_tail

    # Steady-state per-query cost of the winning system, for the record.
    benchmark.pedantic(
        lambda: datalawyer.submit(sql, uid=uid), rounds=20, iterations=1
    )
