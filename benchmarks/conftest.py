"""Benchmark fixtures: one mid-size MIMIC database shared per session."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.workloads import MimicConfig, build_mimic_database, make_workload

#: Mid-size scale: big enough that W1..W4 spread over ~two orders of
#: magnitude, small enough that the full bench suite runs in minutes.
BENCH_CONFIG = MimicConfig(n_patients=300)


@pytest.fixture(scope="session")
def bench_config() -> MimicConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def _bench_template():
    return build_mimic_database(BENCH_CONFIG)


@pytest.fixture
def bench_db(_bench_template):
    """A fresh clone of the bench database (each bench mutates its logs)."""
    return _bench_template.clone()


@pytest.fixture(scope="session")
def bench_workload(bench_config):
    return make_workload(bench_config)
