"""Benchmark fixtures: one mid-size MIMIC database shared per session."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.workloads import MimicConfig, build_mimic_database, make_workload

#: Mid-size scale: big enough that W1..W4 spread over ~two orders of
#: magnitude, small enough that the full bench suite runs in minutes.
BENCH_CONFIG = MimicConfig(n_patients=300)

#: ``--quick`` (the CI smoke lane) swaps in this config and caps
#: ``figutil.SCALE`` so every bench exercises its full code path in
#: seconds; the published numbers are then smoke artifacts, not results.
QUICK_CONFIG = MimicConfig(n_patients=60)
QUICK_SCALE_CAP = 0.25


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="bench smoke mode: shrink workloads so the suite runs in "
        "seconds (CI); numbers are not comparable to full runs",
    )
    parser.addoption(
        "--modeled",
        action="store_true",
        default=False,
        help="DEPRECATED: also run the modeled-dispatch thread-shard "
        "lane of bench_service_throughput (sleep-based pseudo-scaling; "
        "numbers are not wall-clock scaling results)",
    )


def pytest_configure(config):
    if config.getoption("--quick"):
        global BENCH_CONFIG
        import figutil

        figutil.SCALE = min(figutil.SCALE, QUICK_SCALE_CAP)
        BENCH_CONFIG = QUICK_CONFIG


@pytest.fixture(scope="session")
def bench_config() -> MimicConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def _bench_template():
    return build_mimic_database(BENCH_CONFIG)


@pytest.fixture
def bench_db(_bench_template):
    """A fresh clone of the bench database (each bench mutates its logs)."""
    return _bench_template.clone()


@pytest.fixture(scope="session")
def bench_workload(bench_config):
    return make_workload(bench_config)
